(** Experiments V1 and V2 — machine checks of the paper's derivations.

    V1 solves the routing Markov chains of Figs. 4, 5(b), 8 exactly and
    compares them against the closed-form p(h,q) of section 4.3; the
    agreement is at float precision.

    V2 compares analytical routability with the Monte-Carlo simulator:
    exact for tree and hypercube, a lower bound for ring, and a
    quantified idealisation gap for XOR (bucket-suffix randomisation)
    and Symphony (shortcut overshoot near the destination). *)

type chain_row = {
  label : string;
  h : int;
  q : float;
  closed_form : float;
  chain : float;
  abs_error : float;
}

val default_qs : float list
val default_hs : int list

val chain_vs_closed :
  ?hs:int list -> ?qs:float list -> ?symphony_d:int -> unit -> chain_row list

val max_chain_error : chain_row list -> float

type sim_status =
  [ `Matches | `Bound_holds | `Gap of float | `Violation of float | `No_data ]
(** [`No_data]: the simulation attempted no pairs (every trial had
    fewer than two survivors), so there is nothing to compare — it is
    reported as such, never as a spurious violation or match. *)

type sim_row = {
  geometry : Rcm.Geometry.t;
  q : float;
  analysis : float;
  simulated : Stats.Binomial_ci.t option;  (** [None] iff status is [`No_data] *)
  status : sim_status;
}

val sim_vs_analysis :
  ?bits:int ->
  ?qs:float list ->
  ?trials:int ->
  ?pairs_per_trial:int ->
  ?seed:int ->
  unit ->
  sim_row list

val sim_violations : sim_row list -> sim_row list
(** Rows whose exactness/bound expectation failed — empty on a correct
    build. *)

val pp_chain_rows : Format.formatter -> chain_row list -> unit
val pp_sim_rows : Format.formatter -> sim_row list -> unit
