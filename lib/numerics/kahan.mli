(** Compensated (Neumaier-Kahan) floating-point summation.

    Used throughout the RCM engine to accumulate series whose terms span
    many orders of magnitude without losing low-order bits. *)

type t
(** A mutable running compensated sum. *)

val create : unit -> t
(** [create ()] is a fresh accumulator with total [0.0]. *)

val add : t -> float -> unit
(** [add acc x] folds [x] into the running sum. *)

val total : t -> float
(** [total acc] is the compensated value of the sum so far. *)

val count : t -> int
(** [count acc] is the number of terms added so far. *)

val sum_array : float array -> float
(** [sum_array xs] is the compensated sum of all elements of [xs]. *)

val sum_list : float list -> float
(** [sum_list xs] is the compensated sum of all elements of [xs]. *)

val sum_fn : lo:int -> hi:int -> (int -> float) -> float
(** [sum_fn ~lo ~hi f] is the compensated sum of [f i] for [i] from [lo]
    to [hi] inclusive. Empty when [lo > hi]. *)
