(** Cooperative cancellation for long sweeps.

    A single process-wide flag, set either programmatically
    ({!request}) or by the SIGINT/SIGTERM handlers that {!install}
    registers. Nothing is interrupted preemptively: supervised task
    runners ({!Pool.supervised}, {!Pool.map_supervised}) consult the
    flag at task boundaries, so a cancelled sweep stops cleanly between
    trials with every completed trial intact — the front end can then
    flush checkpoints, metrics and traces before exiting.

    The flag is an [Atomic.t]: safe to read from any domain, and safe
    to set from an OCaml signal handler. *)

exception Cancelled
(** Raised by sweep drivers (e.g. [Sim.Estimate.run_sweep]) after they
    have observed the flag, recorded partial state and unwound — the
    front end catches it, reports, and exits with {!exit_code}. *)

val exit_code : int
(** The distinct exit code for a cancelled run: 130 (128 + SIGINT),
    also used for SIGTERM so "interrupted" is one observable status. *)

val install : unit -> unit
(** Register SIGINT and SIGTERM handlers that set the flag. A second
    signal while the flag is already set exits immediately with
    {!exit_code} (escape hatch when a trial wedges). Idempotent; call
    from the main domain before starting work. *)

val request : unit -> unit
(** Set the flag programmatically (tests, embedding applications). *)

val requested : unit -> bool
(** One atomic load; cheap on any hot path. *)

val reset : unit -> unit
(** Clear the flag (between independent runs in one process, and in
    tests). Does not uninstall signal handlers. *)

val check : unit -> unit
(** @raise Cancelled when the flag is set. *)
