(** Exact constructions of the paper's routing Markov chains.

    Each builder materialises the chain for routing to a target h hops
    (or phases) away under node-failure probability q, exactly as drawn
    in Figs. 4(a), 4(b), 5(b), 8(a) and 8(b). Solving these chains gives
    the ground truth that the closed-form p(h,q) expressions of
    section 4.3 are tested against. *)

type routing = { chain : Chain.t; success : int; failure : int }

val success_probability : routing -> float
(** Absorption probability in the success state: p(h, q). *)

val failure_probability : routing -> float

val expected_hops : routing -> float
(** Expected number of hops taken before absorption (success or
    failure). *)

val expected_hops_given_success : routing -> float
(** Expected hop count of successfully delivered messages — the latency
    the RCM chains predict for surviving paths. *)

val hop_distribution_given_success : routing -> float array
(** Full pmf of the delivered hop count (entry t = P(t hops | success));
    empty when delivery is impossible. *)

val tree : h:int -> q:float -> routing
(** Fig. 4(a): Plaxton tree, target h ordered bit-corrections away. *)

val hypercube : h:int -> q:float -> routing
(** Fig. 4(b): CAN hypercube, target at Hamming distance h. *)

val xor : h:int -> q:float -> routing
(** Fig. 5(b): Kademlia XOR routing, target h phases away. *)

val ring_max_phases : int
(** Phase m of the ring chain has 2^(m-1) suboptimal states, so chains
    above this bound are refused. *)

val ring : h:int -> q:float -> routing
(** Fig. 8(a): Chord ring (lower-bound model), target h phases away.
    @raise Invalid_argument when [h > ring_max_phases]. *)

val symphony_suboptimal_cap : d:int -> q:float -> int
(** ceil(d / (1 - q)): the paper's cap on suboptimal hops per phase. *)

val symphony : d:int -> phases:int -> q:float -> k_n:int -> k_s:int -> routing
(** Fig. 8(b): Symphony with [k_n] near neighbours and [k_s] shortcuts
    in a 2^d space, target [phases] phases away.
    @raise Invalid_argument outside the model domain
    (k_s/d + q^(k_n+k_s) > 1). *)
