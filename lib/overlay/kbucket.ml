(* Kademlia-style k-buckets with the maintenance discipline of real
   implementations: contacts kept in least-recently-seen order (head at
   index 0, tail at the end), ping-before-evict on the head, and a
   bounded replacement cache whose most-recently-seen entry is promoted
   when a dead head is evicted. *)

type bucket = { mutable contacts : int array; mutable cache : int array }

type t = {
  space : Idspace.Space.t;
  k : int;
  cache_k : int;
  buckets : bucket array array;
}

type maintenance =
  | No_contact
  | Refreshed of int
  | Evicted of { dead : int; promoted : int option }

let space t = t.space

let bits t = Idspace.Space.bits t.space

let node_count t = Idspace.Space.size t.space

let k t = t.k

let cache_k t = t.cache_k

let capacity t ~level = min t.k (1 lsl (bits t - level))

let check_level t level =
  if level < 1 || level > bits t then
    invalid_arg "Kbucket.bucket: level outside 1..bits"

let unsafe_bucket t v level =
  check_level t level;
  t.buckets.(v).(level - 1).contacts

let bucket t v level = Array.copy (unsafe_bucket t v level)

let cache t v level =
  check_level t level;
  Array.copy t.buckets.(v).(level - 1).cache

(* All candidates for the level bucket of v share v's first level-1
   bits and differ on bit [level]; there are 2^(bits-level) of them.
   When the candidate set is small we enumerate it; otherwise we draw
   distinct random suffixes by rejection (k << candidates). With
   [?alive] a dead draw is retried up to 8 times before being accepted,
   so redraws under churn prefer live contacts without ever spinning on
   a mostly-dead population. *)
let sample_bucket ?alive space rng ~k v ~level =
  let bits = Idspace.Space.bits space in
  let base = Idspace.Id.flip_bit ~bits v level in
  let candidates = 1 lsl (bits - level) in
  if candidates <= k then
    Array.init candidates (fun suffix ->
        Idspace.Id.with_suffix ~bits base ~prefix_len:level ~suffix)
  else begin
    let is_alive id = match alive with None -> true | Some f -> f id in
    let chosen = Hashtbl.create k in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let rec draw attempts =
        let suffix = Prng.Splitmix.int rng candidates in
        if Hashtbl.mem chosen suffix then draw attempts
        else
          let id = Idspace.Id.with_suffix ~bits base ~prefix_len:level ~suffix in
          if attempts >= 8 || is_alive id then (suffix, id) else draw (attempts + 1)
      in
      let suffix, id = draw 0 in
      Hashtbl.add chosen suffix ();
      out.(!filled) <- id;
      incr filled
    done;
    out
  end

let build ?(rng = Prng.Splitmix.create ~seed:0xb0cce) ?(cache_k = 0) ~bits ~k () =
  if k < 1 then invalid_arg "Kbucket.build: k < 1";
  if cache_k < 0 then invalid_arg "Kbucket.build: cache_k < 0";
  let space = Idspace.Space.create ~bits in
  let node v =
    Array.init bits (fun i ->
        { contacts = sample_bucket space rng ~k v ~level:(i + 1); cache = [||] })
  in
  { space; k; cache_k; buckets = Array.init (Idspace.Space.size space) node }

let rebuild_bucket ?alive t rng v ~level =
  let b = t.buckets.(v).(level - 1) in
  b.contacts <- sample_bucket ?alive t.space rng ~k:t.k v ~level;
  b.cache <- [||]

let iter_contacts t v f =
  Array.iter (fun b -> Array.iter f b.contacts) t.buckets.(v)

let index_of a x =
  let n = Array.length a in
  let rec scan i = if i >= n then None else if a.(i) = x then Some i else scan (i + 1) in
  scan 0

(* Remove index i, keeping order. *)
let remove_at a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let append a x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < n then a.(j) else x)

let move_to_tail a i =
  let x = a.(i) in
  append (remove_at a i) x

let observe t v id =
  if v <> id then
    match Idspace.Id.highest_differing_bit ~bits:(bits t) v id with
    | None -> ()
    | Some level ->
        let b = t.buckets.(v).(level - 1) in
        (match index_of b.contacts id with
        | Some i -> b.contacts <- move_to_tail b.contacts i
        | None ->
            if Array.length b.contacts < capacity t ~level then
              b.contacts <- append b.contacts id
            else if t.cache_k > 0 then begin
              (match index_of b.cache id with
              | Some i -> b.cache <- move_to_tail b.cache i
              | None -> b.cache <- append b.cache id);
              if Array.length b.cache > t.cache_k then
                b.cache <- remove_at b.cache 0
            end)

let ping_evict t v ~level ~alive =
  check_level t level;
  let b = t.buckets.(v).(level - 1) in
  if Array.length b.contacts = 0 then No_contact
  else begin
    let head = b.contacts.(0) in
    if alive head then begin
      b.contacts <- move_to_tail b.contacts 0;
      Refreshed head
    end
    else begin
      let rest = remove_at b.contacts 0 in
      let promoted =
        let m = Array.length b.cache in
        if m = 0 then None
        else begin
          let candidate = b.cache.(m - 1) in
          b.cache <- remove_at b.cache (m - 1);
          Some candidate
        end
      in
      b.contacts <- (match promoted with None -> rest | Some c -> append rest c);
      Evicted { dead = head; promoted }
    end
  end

let maintain t v ~alive =
  for level = 1 to bits t do
    ignore (ping_evict t v ~level ~alive)
  done

let invariant_violation t =
  let d = bits t in
  let fail = ref None in
  let note msg = if !fail = None then fail := Some msg in
  let check_entry v level id =
    if id = v then note (Printf.sprintf "node %d level %d: contains self" v level)
    else
      match Idspace.Id.highest_differing_bit ~bits:d v id with
      | Some l when l = level -> ()
      | _ ->
          note
            (Printf.sprintf "node %d level %d: contact %d belongs to another bucket"
               v level id)
  in
  Array.iteri
    (fun v levels ->
      Array.iteri
        (fun i b ->
          let level = i + 1 in
          if Array.length b.contacts > capacity t ~level then
            note (Printf.sprintf "node %d level %d: over capacity" v level);
          if Array.length b.cache > t.cache_k then
            note (Printf.sprintf "node %d level %d: cache over bound" v level);
          let seen = Hashtbl.create 16 in
          let distinct id =
            if Hashtbl.mem seen id then
              note (Printf.sprintf "node %d level %d: duplicate %d" v level id)
            else Hashtbl.add seen id ()
          in
          Array.iter
            (fun id ->
              check_entry v level id;
              distinct id)
            b.contacts;
          Array.iter
            (fun id ->
              check_entry v level id;
              distinct id)
            b.cache)
        levels)
    t.buckets;
  !fail
