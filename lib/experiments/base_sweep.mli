(** Experiment A7 — identifier base sweep (section 3's "any other base
    besides 2 can be used", i.e. Pastry's b parameter).

    Same network size, wider digits: routes shorten from d to d/group
    phases, which substantially improves the unscalable tree geometry's
    finite-size resilience (it stays unscalable: Q(m) = q is still
    constant). Analysis via {!Rcm.Digits} against simulation over
    {!Overlay.Digit_table}. *)

type config = {
  bits : int;
  groups : int list;  (** digit widths; base b = 2^group *)
  qs : float list;
  trials : int;
  pairs : int;
  seed : int;
}

val default_config : config

val simulate : config -> mode:[ `Tree | `Xor ] -> group:int -> float -> float
(** Simulated routability at one grid point. *)

val simulate_sweep :
  ?pool:Exec.Pool.t ->
  config ->
  mode:[ `Tree | `Xor ] ->
  group:int ->
  float list ->
  float array
(** The simulated column over a q grid as one [|qs| × trials] task
    batch; bit-identical to per-point {!simulate} calls for every pool
    size. *)

val tree_series : ?pool:Exec.Pool.t -> config -> Series.t
val xor_series : ?pool:Exec.Pool.t -> config -> Series.t

val tree_monotone_in_base : config -> bool
(** True when analytical tree routability never decreases with the
    digit width across the grid. *)
