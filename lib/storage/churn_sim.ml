type config = {
  bits : int;
  nodes : int;
  keys : int;
  reads : int;
  zipf_s : float;
  quorum : Quorum.t;
  session : Sim.Lifetime.t;
  gap : Sim.Lifetime.t;
  warmup : float;
  measurements : int;
  spacing : float;
}

let validate cfg =
  if cfg.bits < 1 || cfg.bits > 30 then
    invalid_arg "Churn_sim: bits outside 1..30";
  if cfg.nodes < 2 || cfg.nodes > 1 lsl cfg.bits then
    invalid_arg "Churn_sim: nodes outside 2..2^bits";
  if cfg.keys < 1 then invalid_arg "Churn_sim: keys must be >= 1";
  if cfg.reads < 0 then invalid_arg "Churn_sim: reads must be >= 0";
  if (not (Float.is_finite cfg.zipf_s)) || cfg.zipf_s < 0. then
    invalid_arg "Churn_sim: zipf_s must be finite and non-negative";
  if cfg.quorum.Quorum.r > cfg.nodes then
    invalid_arg "Churn_sim: replication degree exceeds node count";
  if cfg.measurements < 1 then
    invalid_arg "Churn_sim: need at least one measurement";
  if cfg.warmup < 0. || cfg.spacing <= 0. then
    invalid_arg "Churn_sim: bad measurement schedule"

let churn_rate cfg =
  1. /. (Sim.Lifetime.mean cfg.session +. Sim.Lifetime.mean cfg.gap)

let expected_alive cfg =
  Sim.Lifetime.mean cfg.session
  /. (Sim.Lifetime.mean cfg.session +. Sim.Lifetime.mean cfg.gap)

type measurement = {
  time : float;
  alive_fraction : float;
  availability : float option;
  survival : float;
}

type result = {
  measurements : measurement list;
  attempted : int;
  quorum_reads : int;
  degraded_reads : int;
  failed_reads : int;
  no_client : int;
  availability : float option;
  survival : float;
  mean_alive : float;
  probe_routes : int;
  repair_routes : int;
  repair_transfers : int;
  load_max : int;
  load_mean : float;
  load_p99 : int;
  events : int;
}

type event = Depart of int | Arrive of int | Measure

let run geometry cfg ~seed =
  validate cfg;
  let rng = Prng.Splitmix.create ~seed in
  let overlay =
    Overlay.Sparse.build ~rng ~bits:cfg.bits ~nodes:cfg.nodes geometry
  in
  let store =
    Store.create ~zipf_s:cfg.zipf_s ~keys:cfg.keys ~quorum:cfg.quorum ~rng
      overlay
  in
  let alive = Overlay.Failure.none cfg.nodes in
  let queue = Sim.Event_queue.create () in
  for v = 0 to cfg.nodes - 1 do
    Sim.Event_queue.add queue
      ~time:(Sim.Lifetime.draw cfg.session rng)
      (Depart v)
  done;
  for i = 0 to cfg.measurements - 1 do
    Sim.Event_queue.add queue
      ~time:(cfg.warmup +. (float_of_int i *. cfg.spacing))
      Measure
  done;
  let horizon =
    cfg.warmup +. (float_of_int cfg.measurements *. cfg.spacing)
  in
  let attempted = ref 0 in
  let quorum_reads = ref 0 in
  let degraded_reads = ref 0 in
  let failed_reads = ref 0 in
  let no_client = ref 0 in
  let probe_routes = ref 0 in
  let repair_routes = ref 0 in
  let repair_transfers = ref 0 in
  let events = ref 0 in
  let out = ref [] in
  let measure time =
    let survivors = Overlay.Failure.survivors alive in
    let alive_n = Array.length survivors in
    let availability =
      if alive_n = 0 then begin
        no_client := !no_client + cfg.reads;
        None
      end
      else begin
        let epoch_quorum = ref 0 in
        for _ = 1 to cfg.reads do
          let client = survivors.(Prng.Splitmix.int rng alive_n) in
          let stats = Store.read store ~rng ~alive ~client in
          incr attempted;
          (match stats.Store.outcome with
          | Quorum.Quorum ->
              incr quorum_reads;
              incr epoch_quorum
          | Quorum.Degraded _ -> incr degraded_reads
          | Quorum.Unavailable -> incr failed_reads);
          probe_routes := !probe_routes + stats.Store.probe_routes;
          repair_routes := !repair_routes + stats.Store.repair_routes;
          repair_transfers := !repair_transfers + stats.Store.repair_transfers
        done;
        if cfg.reads = 0 then None
        else Some (float_of_int !epoch_quorum /. float_of_int cfg.reads)
      end
    in
    let survival =
      float_of_int
        (Store.surviving_keys store ~alive ~quorum:cfg.quorum.Quorum.rq)
      /. float_of_int cfg.keys
    in
    out :=
      {
        time;
        alive_fraction = float_of_int alive_n /. float_of_int cfg.nodes;
        availability;
        survival;
      }
      :: !out
  in
  let rec loop () =
    match Sim.Event_queue.pop queue with
    | None -> ()
    | Some (time, _) when time > horizon -> ()
    | Some (time, ev) ->
        incr events;
        (match ev with
        | Depart v ->
            Overlay.Failure.set alive v false;
            Sim.Event_queue.add queue
              ~time:(time +. Sim.Lifetime.draw cfg.gap rng)
              (Arrive v)
        | Arrive v ->
            Overlay.Failure.set alive v true;
            Sim.Event_queue.add queue
              ~time:(time +. Sim.Lifetime.draw cfg.session rng)
              (Depart v)
        | Measure -> measure time);
        loop ()
  in
  loop ();
  let measurements = List.rev !out in
  let count = List.length measurements in
  let mean f =
    List.fold_left (fun acc m -> acc +. f m) 0. measurements
    /. float_of_int count
  in
  let loads = Store.loads store in
  Array.sort compare loads;
  let total_load = Array.fold_left ( + ) 0 loads in
  let p99 =
    let len = Array.length loads in
    loads.(min (len - 1)
             (max 0 (int_of_float (Float.ceil (0.99 *. float_of_int len)) - 1)))
  in
  {
    measurements;
    attempted = !attempted;
    quorum_reads = !quorum_reads;
    degraded_reads = !degraded_reads;
    failed_reads = !failed_reads;
    no_client = !no_client;
    availability =
      (if !attempted = 0 then None
       else Some (float_of_int !quorum_reads /. float_of_int !attempted));
    survival = mean (fun m -> m.survival);
    mean_alive = mean (fun m -> m.alive_fraction);
    probe_routes = !probe_routes;
    repair_routes = !repair_routes;
    repair_transfers = !repair_transfers;
    load_max = (if Array.length loads = 0 then 0 else loads.(Array.length loads - 1));
    load_mean = float_of_int total_load /. float_of_int cfg.nodes;
    load_p99 = p99;
    events = !events;
  }
