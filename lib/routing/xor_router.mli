(** Kademlia XOR routing under failures (section 3.3): greedy in the
    XOR metric, preferring the highest-order bit correction and falling
    back to lower-order corrections when contacts are dead. *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  alive:bool array ->
  src:int ->
  dst:int ->
  Outcome.t
