#!/usr/bin/env sh
# Hotspot smoke: prove the per-node load telemetry end to end.
#
#   1. Determinism: a smoke hotspot sweep must produce byte-identical
#      CSV output AND a byte-identical persisted loadmap at --jobs 1
#      and --jobs 8 — the merge is commutative integer addition, so the
#      domain count must never show in a single counter.
#   2. Batch parity: the same sweep with --no-batch (scalar routers)
#      must produce the same bytes again — the C kernels count the
#      same accepted hops and terminations as the scalar paths.
#   3. Shape: the CSV header matches the documented schema, the
#      loadmap file has one row per node, and every JSON point parses
#      per-plane with the four counter summaries present.
#
# Usage: scripts/hotspot_smoke.sh [path-to-dhtlab]
# HOTSPOT_WORK, when set, names the work directory to use (and keep)
# so CI can upload it on failure. Exits non-zero on the first
# violation.

set -eu

DHTLAB=${1:-_build/default/bin/dhtlab.exe}
if [ -n "${HOTSPOT_WORK:-}" ]; then
    WORK=$HOTSPOT_WORK
    mkdir -p "$WORK"
else
    WORK=$(mktemp -d "${TMPDIR:-/tmp}/hotspot_smoke.XXXXXX")
    trap 'rm -rf "$WORK"' EXIT INT TERM
fi

fail() {
    echo "hotspot-smoke: FAIL: $1" >&2
    exit 1
}

echo "hotspot-smoke: 1/3 loadmap byte-identity across --jobs"
$DHTLAB hotspots --smoke --no-progress --jobs 1 \
    --loadmap "$WORK/lm.j1.csv" --csv > "$WORK/out.j1.csv" 2> /dev/null
$DHTLAB hotspots --smoke --no-progress --jobs 8 \
    --loadmap "$WORK/lm.j8.csv" --csv > "$WORK/out.j8.csv" 2> /dev/null
diff "$WORK/out.j1.csv" "$WORK/out.j8.csv" \
    || fail "CSV output differs between --jobs 1 and --jobs 8"
diff "$WORK/lm.j1.csv" "$WORK/lm.j8.csv" \
    || fail "persisted loadmap differs between --jobs 1 and --jobs 8"

echo "hotspot-smoke: 2/3 batch vs scalar per-node count parity"
$DHTLAB hotspots --smoke --no-progress --jobs 4 --no-batch \
    --loadmap "$WORK/lm.scalar.csv" --csv > "$WORK/out.scalar.csv" 2> /dev/null
diff "$WORK/out.j1.csv" "$WORK/out.scalar.csv" \
    || fail "CSV output differs between batch and --no-batch"
diff "$WORK/lm.j1.csv" "$WORK/lm.scalar.csv" \
    || fail "persisted loadmap differs between batch and --no-batch"

echo "hotspot-smoke: 3/3 CSV, loadmap and JSON shape"
head -n 1 "$WORK/out.j1.csv" | grep -q \
    '^plane,geometry,bits,nodes,axis,kind,total,active_nodes,load_max,load_mean,congestion,gini,traversals,terminations,storage_reads,repairs$' \
    || fail "unexpected CSV header"
head -n 1 "$WORK/lm.j1.csv" | grep -q \
    '^node,traversals,terminations,storage_reads,repairs$' \
    || fail "unexpected loadmap header"
# --smoke pins bits to 8: the routing plane's map covers 2^8 nodes,
# so the file is the header plus 256 rows.
ROWS=$(($(wc -l < "$WORK/lm.j1.csv") - 1))
[ "$ROWS" -eq 256 ] || fail "loadmap has $ROWS rows, expected 256"
grep -q '^routing,' "$WORK/out.j1.csv" || fail "no routing-plane points in CSV"
grep -q '^storage,' "$WORK/out.j1.csv" || fail "no storage-plane points in CSV"
$DHTLAB hotspots --smoke --no-progress --jobs 1 --json \
    > "$WORK/out.json" 2> /dev/null
for key in '"plane"' '"traversals"' '"terminations"' '"storage_reads"' '"repairs"' '"gini"'; do
    grep -q "$key" "$WORK/out.json" || fail "JSON output is missing $key"
done

echo "hotspot-smoke: OK (per-node counts identical across jobs and batch/scalar)"
