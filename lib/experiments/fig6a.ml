type config = {
  bits : int;
  qs : float list;
  trials : int;
  pairs_per_trial : int;
  seed : int;
}

(* The paper's setting: N = 2^16 nodes, failure probability swept to
   0.5, simulation percentages estimated over sampled pairs. *)
let default_config =
  { bits = 16; qs = Grid.fig6_q; trials = 3; pairs_per_trial = 2_000; seed = 1006 }

let quick_config =
  { bits = 10; qs = Grid.fig6_q; trials = 2; pairs_per_trial = 500; seed = 1006 }

(* Fig. 6(a) compares tree, hypercube and XOR; ring is split out into
   Fig. 6(b) because its analysis is only a bound. *)
let geometries = [ Rcm.Geometry.Tree; Rcm.Geometry.Hypercube; Rcm.Geometry.Xor ]

let analysis_column cfg geometry =
  ( Rcm.Geometry.name geometry ^ "(ana)",
    fun q -> Rcm.Model.failed_paths_percent geometry ~d:cfg.bits ~q )

let simulation_column cfg geometry =
  ( Rcm.Geometry.name geometry ^ "(sim)",
    fun q ->
      let sim =
        Sim.Estimate.run
          (Sim.Estimate.config ~trials:cfg.trials ~pairs_per_trial:cfg.pairs_per_trial
             ~seed:cfg.seed ~bits:cfg.bits ~q geometry)
      in
      Sim.Estimate.failed_percent sim )

let analysis cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf "Fig 6(a) analysis: %% failed paths, N=2^%d (tree/hypercube/xor)"
         cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.map (analysis_column cfg) geometries)

let simulation cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf "Fig 6(a) simulation: %% failed paths, N=2^%d (tree/hypercube/xor)"
         cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.map (simulation_column cfg) geometries)

let run cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf "Fig 6(a): %% failed paths vs q, N=2^%d — analysis vs simulation"
         cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.concat_map
       (fun g -> [ analysis_column cfg g; simulation_column cfg g ])
       geometries)
