open Helpers

(* --- Series ------------------------------------------------------------ *)

let sample_series =
  Experiments.Series.create ~title:"t" ~x_label:"q"
    ~x:[| 0.0; 0.5; 1.0 |]
    [ Experiments.Series.column ~label:"a" [| 1.0; 2.0; 3.0 |] ]

let test_series_shape_mismatch () =
  Alcotest.(check bool) "length mismatch rejected" true
    (try
       ignore
         (Experiments.Series.create ~title:"t" ~x_label:"q" ~x:[| 1.0 |]
            [ Experiments.Series.column ~label:"a" [| 1.0; 2.0 |] ]);
       false
     with Invalid_argument _ -> true)

let test_series_lookup () =
  Alcotest.(check (option (float 0.0))) "value at" (Some 2.0)
    (Experiments.Series.value_at sample_series ~label:"a" ~x:0.5);
  Alcotest.(check (option (float 0.0))) "missing x" None
    (Experiments.Series.value_at sample_series ~label:"a" ~x:0.7);
  Alcotest.(check bool) "missing column" true
    (Experiments.Series.find_column sample_series "b" = None)

let test_series_csv () =
  let csv = Experiments.Series.to_csv sample_series in
  Alcotest.(check string) "csv" "q,a\n0,1\n0.5,2\n1,3\n" csv

let test_series_tabulate () =
  let s =
    Experiments.Series.tabulate ~title:"sq" ~x_label:"x" ~x:[ 1.0; 2.0; 3.0 ]
      [ ("square", fun x -> x *. x) ]
  in
  Alcotest.(check (option (float 0.0))) "tabulated" (Some 9.0)
    (Experiments.Series.value_at s ~label:"square" ~x:3.0)

let test_grid () =
  Alcotest.(check int) "fig6 grid size" 11 (List.length Experiments.Grid.fig6_q);
  check_close 0.05 (List.nth Experiments.Grid.fig6_q 1);
  Alcotest.(check int) "fig7a grid size" 15 (List.length Experiments.Grid.fig7a_q);
  check_close 0.7 (List.nth Experiments.Grid.fig7a_q 14);
  Alcotest.(check (list int)) "ints" [ 3; 4; 5 ] (Experiments.Grid.ints ~lo:3 ~hi:5)

(* --- Figure experiments (quick configurations) -------------------------- *)

let quick6 = { Experiments.Fig6a.quick_config with trials = 1; pairs_per_trial = 300 }

let test_fig6a_analysis_shape () =
  let s = Experiments.Fig6a.analysis quick6 in
  (* At q = 0 nothing fails; at q = 0.3 the tree fails far more than the
     hypercube. *)
  let v label q = Option.get (Experiments.Series.value_at s ~label ~x:q) in
  Alcotest.(check bool) "q=0 tree" true (v "tree(ana)" 0.0 < 1e-9);
  Alcotest.(check bool) "ordering" true (v "tree(ana)" 0.3 > 3.0 *. v "hypercube(ana)" 0.3);
  Alcotest.(check bool) "xor between" true
    (v "xor(ana)" 0.3 > v "hypercube(ana)" 0.3 && v "xor(ana)" 0.3 < v "tree(ana)" 0.3)

let test_fig6a_simulation_tracks_analysis () =
  let s = Experiments.Fig6a.run quick6 in
  (* Tree and hypercube simulations sit on their analytic curves
     (within Monte-Carlo noise at 300 pairs: a few percentage points). *)
  List.iter
    (fun label ->
      Array.iteri
        (fun _i q ->
          let ana =
            Option.get (Experiments.Series.value_at s ~label:(label ^ "(ana)") ~x:q)
          in
          let sim =
            Option.get (Experiments.Series.value_at s ~label:(label ^ "(sim)") ~x:q)
          in
          if Float.abs (ana -. sim) > 8.0 then
            Alcotest.failf "%s at q=%.2f: analysis %.1f%% vs sim %.1f%%" label q ana sim)
        s.Experiments.Series.x)
    [ "tree"; "hypercube" ]

let test_fig6b_bound () =
  let s = Experiments.Fig6b.run quick6 in
  Alcotest.(check (list (triple (float 0.0) (float 0.0) (float 0.0))))
    "no bound violations" []
    (Experiments.Fig6b.bound_violations ~slack:4.0 s)

let test_fig7a_step_functions () =
  let s = Experiments.Fig7a.run Experiments.Fig7a.default_config in
  Alcotest.(check bool) "tree is a step function" true
    (Experiments.Fig7a.step_function_like s ~label:"tree");
  Alcotest.(check bool) "symphony is a step function" true
    (Experiments.Fig7a.step_function_like s ~label:"symphony");
  Alcotest.(check bool) "hypercube is not" false
    (Experiments.Fig7a.step_function_like s ~label:"hypercube")

let test_fig7a_matches_d16_for_scalable () =
  (* "The curves for the other three geometries are very close to the
     case for N = 2^16" — check within 2.5 percentage points at
     q <= 0.5. *)
  let s100 = Experiments.Fig7a.run Experiments.Fig7a.default_config in
  List.iter
    (fun label ->
      List.iter
        (fun q ->
          let g = Result.get_ok (Rcm.Geometry.of_string label) in
          let v16 = Rcm.Model.failed_paths_percent g ~d:16 ~q in
          let v100 = Option.get (Experiments.Series.value_at s100 ~label ~x:q) in
          if Float.abs (v16 -. v100) > 2.5 then
            Alcotest.failf "%s at q=%.2f: d=16 %.2f%% vs d=100 %.2f%%" label q v16 v100)
        [ 0.1; 0.3; 0.5 ])
    [ "hypercube"; "xor"; "ring" ]

let test_fig7b_scalability_split () =
  let s = Experiments.Fig7b.run Experiments.Fig7b.default_config in
  Alcotest.(check bool) "tree decays" true
    (Experiments.Fig7b.monotonically_decaying s ~label:"tree");
  Alcotest.(check bool) "symphony decays" true
    (Experiments.Fig7b.monotonically_decaying s ~label:"symphony");
  Alcotest.(check bool) "hypercube stays up" true
    (Experiments.Fig7b.stays_routable s ~label:"hypercube" ~floor:0.98);
  Alcotest.(check bool) "xor stays up" true
    (Experiments.Fig7b.stays_routable s ~label:"xor" ~floor:0.95);
  Alcotest.(check bool) "ring stays up" true
    (Experiments.Fig7b.stays_routable s ~label:"ring" ~floor:0.97)

let test_classification_table () =
  let report = Experiments.Classification.run () in
  Alcotest.(check bool) "all agree with the paper" true
    (Experiments.Classification.all_agree report);
  Alcotest.(check int) "five rows" 5 (List.length report.Experiments.Classification.rows)

let test_validation_v1 () =
  let rows = Experiments.Validation.chain_vs_closed ~hs:[ 1; 4; 9 ] ~qs:[ 0.1; 0.4 ] () in
  Alcotest.(check bool) "max error tiny" true
    (Experiments.Validation.max_chain_error rows < 1e-10)

let test_validation_v2 () =
  let rows =
    Experiments.Validation.sim_vs_analysis ~bits:10 ~qs:[ 0.1; 0.3 ] ~trials:2
      ~pairs_per_trial:1_500 ()
  in
  Alcotest.(check int) "no violations" 0
    (List.length (Experiments.Validation.sim_violations rows))

let test_connectivity_experiment () =
  let cfg =
    { Experiments.Connectivity.default_config with bits = 8; trials = 1; pairs = 300;
      qs = [ 0.0; 0.2; 0.4 ] }
  in
  let s = Experiments.Connectivity.run cfg Rcm.Geometry.Tree in
  Alcotest.(check (list (triple (float 0.0) (float 0.0) (float 0.0))))
    "routability below connectivity" []
    (Experiments.Connectivity.gap_violations ~slack:0.05 s);
  (* At q = 0.4 the tree has a substantial reachability gap. *)
  let gap = Option.get (Experiments.Series.value_at s ~label:"gap" ~x:0.4) in
  Alcotest.(check bool) (Printf.sprintf "gap %.3f > 0.2" gap) true (gap > 0.2)

let test_symphony_knobs () =
  let cfg =
    { Experiments.Symphony_knobs.default_config with bits = 12; qs = [ 0.1; 0.3 ] }
  in
  let s = Experiments.Symphony_knobs.run cfg in
  Alcotest.(check (list (triple (float 0.0) string string)))
    "monotone in knobs" []
    (Experiments.Symphony_knobs.monotonicity_violations s
       ~knobs:cfg.Experiments.Symphony_knobs.knobs);
  (* More links help: (4,4) beats (1,1) at q=0.3. *)
  let v knobs = Option.get (Experiments.Series.value_at s ~label:(Experiments.Symphony_knobs.label knobs) ~x:0.3) in
  Alcotest.(check bool) "knobs help" true (v (4, 4) > v (1, 1))

let test_suffix_ablation () =
  let cfg =
    { Experiments.Suffix_ablation.default_config with bits = 10; trials = 2; pairs = 800;
      qs = [ 0.1; 0.3 ] }
  in
  let s = Experiments.Suffix_ablation.run cfg in
  Alcotest.(check (list (pair (float 0.0) string)))
    "ordering holds" []
    (Experiments.Suffix_ablation.ordering_violations ~slack:0.04 s)

let test_finger_ablation () =
  let cfg =
    { Experiments.Finger_ablation.default_config with bits = 10; trials = 2; pairs = 800;
      qs = [ 0.1; 0.3 ] }
  in
  let s = Experiments.Finger_ablation.run cfg in
  Alcotest.(check (list (triple (float 0.0) (float 0.0) (float 0.0))))
    "deterministic fingers respect the bound" []
    (Experiments.Finger_ablation.bound_violations ~slack:0.04 s)

let suite =
  [
    ("series shape mismatch", `Quick, test_series_shape_mismatch);
    ("series lookup", `Quick, test_series_lookup);
    ("series csv", `Quick, test_series_csv);
    ("series tabulate", `Quick, test_series_tabulate);
    ("grids", `Quick, test_grid);
    ("fig6a analysis shape", `Quick, test_fig6a_analysis_shape);
    ("fig6a simulation tracks analysis", `Slow, test_fig6a_simulation_tracks_analysis);
    ("fig6b ring bound", `Slow, test_fig6b_bound);
    ("fig7a step functions", `Quick, test_fig7a_step_functions);
    ("fig7a scalable curves match d=16", `Quick, test_fig7a_matches_d16_for_scalable);
    ("fig7b scalability split", `Quick, test_fig7b_scalability_split);
    ("classification table", `Quick, test_classification_table);
    ("validation V1 (chains)", `Quick, test_validation_v1);
    ("validation V2 (simulation)", `Slow, test_validation_v2);
    ("connectivity experiment (A1)", `Slow, test_connectivity_experiment);
    ("symphony knobs (A2)", `Quick, test_symphony_knobs);
    ("suffix ablation (A3)", `Slow, test_suffix_ablation);
    ("finger ablation (A4)", `Slow, test_finger_ablation);
  ]
