(** Routability estimation over ablation overlays with custom
    constructors. *)

val routability :
  build:(Prng.Splitmix.t -> Overlay.Table.t) ->
  q:float ->
  trials:int ->
  pairs:int ->
  seed:int ->
  Stats.Binomial_ci.t
(** [build] is called once per trial with that trial's generator;
    failures and pair sampling then proceed as in {!Sim.Estimate}. *)
