(** Base-2^group digit routing tables (Pastry-style): one contact per
    (level, digit value) pair — (b-1)·D entries per node.

    [Preserve_suffix] realises the base-b Plaxton tree (the contact
    differs in exactly one digit); [Randomize_suffix] realises base-b
    Kademlia buckets. At [group = 1] these coincide with the binary
    {!Table} constructions. *)

type style = Preserve_suffix | Randomize_suffix

type t

val build : ?rng:Prng.Splitmix.t -> bits:int -> group:int -> style -> t
(** @raise Invalid_argument unless [group] divides [bits]. *)

val space : t -> Idspace.Space.t
val bits : t -> int
val group : t -> int
val style : t -> style
val node_count : t -> int

val levels : t -> int
(** Number of digit levels D. *)

val base : t -> int

val degree : t -> int
(** (b-1)·D. *)

val neighbor : t -> int -> level:int -> digit:int -> int
(** The contact of node [v] for correcting [level] to [digit].
    @raise Invalid_argument for the node's own digit or out-of-base
    values. *)
