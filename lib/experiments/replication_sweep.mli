(** Experiment A5 — the replication knob (sequential neighbours),
    quantified across the geometries that support it.

    The paper's introduction notes that a system designer "can always
    add enough sequential neighbors to achieve an acceptable
    routability". This experiment sweeps Kademlia bucket size k,
    Plaxton backup-pointer count k, and Chord successor-list length r,
    pairing the extended analysis of {!Rcm.Replication} with a
    simulation of each protocol. *)

type config = {
  bits : int;
  qs : float list;
  ks : int list;  (** bucket sizes to sweep; ring uses [k - 1] successors *)
  trials : int;
  pairs : int;
  seed : int;
}

val default_config : config

val xor_series : config -> Series.t
(** Kademlia with k-buckets: k=...(ana) and k=...(sim) columns. *)

val tree_series : config -> Series.t
(** Plaxton with backup pointers. *)

val ring_series : config -> Series.t
(** Chord with successor lists (r = 0 for k = 1, else r = 2k). *)

val monotonicity_violations : Series.t -> labels:string list -> (float * string * string) list
(** Grid points where increasing the knob decreased routability, over
    consecutive label pairs — empty on a correct build. *)
