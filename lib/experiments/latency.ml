type config = { bits : int; qs : float list; trials : int; pairs : int; seed : int }

let default_config =
  { bits = 12; qs = [ 0.0; 0.1; 0.2; 0.3; 0.4 ]; trials = 3; pairs = 1_500; seed = 707 }

let chain_for geometry ~d ~q ~h =
  match geometry with
  | Rcm.Geometry.Tree -> Markov.Routing_chains.tree ~h ~q
  | Rcm.Geometry.Hypercube -> Markov.Routing_chains.hypercube ~h ~q
  | Rcm.Geometry.Xor -> Markov.Routing_chains.xor ~h ~q
  | Rcm.Geometry.Ring -> Markov.Routing_chains.ring ~h ~q
  | Rcm.Geometry.Symphony { k_n; k_s } ->
      Markov.Routing_chains.symphony ~d ~phases:h ~q ~k_n ~k_s
  | Rcm.Geometry.Custom _ as g -> (
      match Rcm.Model.custom_chain g ~d ~q ~h with
      | Some routing -> routing
      | None ->
          invalid_arg
            (Printf.sprintf "Latency.chain_for: %s has no registered routing chain"
               (Rcm.Geometry.slug g)))

(* E7: expected hop count of *delivered* messages, as the routing
   chains predict it — E_h[ hops | success ] weighted by n(h) p(h)
   (the distance mix of successful routes). Exact for tree and
   hypercube, where one hop advances exactly one phase; an upper bound
   for XOR/ring/symphony, whose real routes can skip phases (suffix
   randomisation, suboptimal-hop progress, long shortcuts). *)
let predicted_hops geometry ~d ~q =
  let spec = Rcm.Model.spec_of_geometry geometry in
  let weighted = Numerics.Kahan.create () in
  let total = Numerics.Kahan.create () in
  (* Phases run 1 .. max_phase; for the five built-ins that is d, while
     digit-grouped custom specs stop at d/group. *)
  for h = 1 to spec.Rcm.Spec.max_phase ~d do
    let routing = chain_for geometry ~d ~q ~h in
    let p = Markov.Routing_chains.success_probability routing in
    if p > 0.0 then begin
      let weight = exp (spec.Rcm.Spec.log_population ~d ~h) *. p in
      let hops = Markov.Routing_chains.expected_hops_given_success routing in
      Numerics.Kahan.add weighted (weight *. hops);
      Numerics.Kahan.add total weight
    end
  done;
  let total = Numerics.Kahan.total total in
  if total <= 0.0 then nan else Numerics.Kahan.total weighted /. total

let simulated_hops cfg geometry q =
  let result =
    Sim.Estimate.run
      (Sim.Estimate.config ~trials:cfg.trials ~pairs_per_trial:cfg.pairs ~seed:cfg.seed
         ~bits:cfg.bits ~q geometry)
  in
  Stats.Summary.mean result.Sim.Estimate.hop_summary

let run cfg geometry =
  Series.tabulate
    ~title:
      (Printf.sprintf "E7 (%s): mean hops of delivered messages, N=2^%d — chain vs simulation"
         (Rcm.Geometry.slug geometry) cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    [
      ("chain", fun q -> predicted_hops geometry ~d:cfg.bits ~q);
      ("sim", simulated_hops cfg geometry);
    ]

let geometries = Rcm.Geometry.all_default

let run_all cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf
         "E7: mean hops of delivered messages vs q, N=2^%d (chain prediction | simulation)"
         cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.concat_map
       (fun g ->
         [
           (Rcm.Geometry.slug g ^ "(chain)", fun q -> predicted_hops g ~d:cfg.bits ~q);
           (Rcm.Geometry.slug g ^ "(sim)", simulated_hops cfg g);
         ])
       geometries)
