type config = {
  bits : int;
  mean_downtimes : float list;
  repair_intervals : float list;
  pairs : int;
  seed : int;
}

(* E8: sweep churn intensity (mean downtime at fixed mean uptime 8.0)
   and repair period, recording the measured stale-entry fraction,
   routability, and the static RCM prediction at q = stale fraction. *)
let default_config =
  {
    bits = 10;
    mean_downtimes = [ 0.5; 1.0; 2.0; 4.0 ];
    repair_intervals = [ 0.5; 2.0 ];
    pairs = 800;
    seed = 808;
  }

type row = {
  geometry : Rcm.Geometry.t;
  mean_downtime : float;
  repair_interval : float;
  report : Sim.Churn.report;
  static_sim : float;
      (** routability of a *static* failure snapshot at q = the churn
          run's measured stale fraction — isolates the static-to-churn
          mapping from the analytical model's idealisations *)
}

let geometries = [ Rcm.Geometry.Xor; Rcm.Geometry.Ring; Rcm.Geometry.default_symphony ]

let run ?(geometries = geometries) cfg =
  List.concat_map
    (fun geometry ->
      List.concat_map
        (fun mean_downtime ->
          List.map
            (fun repair_interval ->
              let churn_config =
                Sim.Churn.config ~bits:cfg.bits ~mean_downtime ~repair_interval
                  ~pairs_per_measurement:cfg.pairs ~seed:cfg.seed geometry
              in
              let report = Sim.Churn.run churn_config in
              let static_sim =
                Sim.Estimate.routability
                  (Sim.Estimate.run
                     (Sim.Estimate.config ~trials:3 ~pairs_per_trial:cfg.pairs
                        ~seed:cfg.seed ~bits:cfg.bits
                        ~q:report.Sim.Churn.mean_stale geometry))
              in
              { geometry; mean_downtime; repair_interval; report; static_sim })
            cfg.repair_intervals)
        cfg.mean_downtimes)
    geometries

(* How well the static *analysis* transfers: |measured - static@q_stale|. *)
let prediction_error row =
  Float.abs
    (row.report.Sim.Churn.mean_routability -. row.report.Sim.Churn.mean_prediction)

(* How well the static *simulation* transfers — the pure bridge test. *)
let bridge_error row =
  Float.abs (row.report.Sim.Churn.mean_routability -. row.static_sim)

let pp_rows ppf rows =
  Fmt.pf ppf "# E8: churn vs static resilience at q = stale fraction@.";
  Fmt.pf ppf "%-10s %9s %8s %8s %8s %12s %12s %12s %8s@." "geometry" "downtime" "repair"
    "alive" "stale" "routability" "static-ana" "static-sim" "bridge";
  List.iter
    (fun row ->
      Fmt.pf ppf "%-10s %9.2f %8.2f %8.3f %8.4f %12.4f %12.4f %12.4f %8.4f@."
        (Rcm.Geometry.slug row.geometry)
        row.mean_downtime row.repair_interval row.report.Sim.Churn.mean_alive
        row.report.Sim.Churn.mean_stale row.report.Sim.Churn.mean_routability
        row.report.Sim.Churn.mean_prediction row.static_sim (bridge_error row))
    rows
