(* The fault-tolerance harness: supervised trials (capture + retry),
   deterministic fault injection, checkpoint/resume and cooperative
   cancellation. The recurring assertion is the strongest one the
   design makes: whatever faults, retries or interruptions happen on
   the way, the surviving numbers are bit-identical to an undisturbed
   run. *)

let check_float_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_same_estimate name (a : Sim.Estimate.result) (b : Sim.Estimate.result) =
  Alcotest.(check int) (name ^ ": delivered") a.Sim.Estimate.delivered b.Sim.Estimate.delivered;
  Alcotest.(check int) (name ^ ": attempted") a.Sim.Estimate.attempted b.Sim.Estimate.attempted;
  Alcotest.(check int) (name ^ ": failed_trials") a.Sim.Estimate.failed_trials
    b.Sim.Estimate.failed_trials;
  check_float_bits (name ^ ": mean_alive_fraction") a.Sim.Estimate.mean_alive_fraction
    b.Sim.Estimate.mean_alive_fraction;
  check_float_bits (name ^ ": routability") (Sim.Estimate.routability a)
    (Sim.Estimate.routability b);
  check_float_bits (name ^ ": hop mean")
    (Stats.Summary.mean a.Sim.Estimate.hop_summary)
    (Stats.Summary.mean b.Sim.Estimate.hop_summary);
  check_float_bits (name ^ ": hop variance")
    (Stats.Summary.variance a.Sim.Estimate.hop_summary)
    (Stats.Summary.variance b.Sim.Estimate.hop_summary)

let check_same_sweep name baseline sweep =
  Alcotest.(check int) (name ^ ": grid size") (List.length baseline) (List.length sweep);
  List.iter2
    (fun (q, expected) (q', got) ->
      check_float_bits (name ^ ": grid point") q q';
      check_same_estimate (Printf.sprintf "%s q=%g" name q) expected got)
    baseline sweep

let cfg =
  Sim.Estimate.config ~trials:4 ~pairs_per_trial:300 ~seed:11 ~bits:8 ~q:0.3
    Rcm.Geometry.Xor

let qs = [ 0.0; 0.2; 0.4 ]

let with_temp_file f =
  let path = Filename.temp_file "dht_rcm" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- Exec.Fault ------------------------------------------------------------ *)

let test_fault_parse_roundtrip () =
  (match Exec.Fault.parse "trial:0.25:99" with
  | Ok t ->
      check_float_bits "p" 0.25 t.Exec.Fault.p;
      Alcotest.(check int) "seed" 99 t.Exec.Fault.seed;
      Alcotest.(check int) "attempts default" 1 t.Exec.Fault.attempts
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Exec.Fault.parse "trial:1:7:3" with
  | Ok t -> Alcotest.(check int) "attempts" 3 t.Exec.Fault.attempts
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match Exec.Fault.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ ""; "trial"; "trial:2:1"; "trial:-0.1:1"; "node:0.5:1"; "trial:0.5:x"; "trial:0.5:1:0" ]

let test_fault_deterministic_and_attempt_bounded () =
  match Exec.Fault.parse "trial:0.5:123:2" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t ->
      let hits = ref 0 in
      for task = 0 to 199 do
        let a = Exec.Fault.should_fail t ~task ~attempt:1 in
        let b = Exec.Fault.should_fail t ~task ~attempt:1 in
        Alcotest.(check bool) "pure function of (seed, task, attempt)" a b;
        (* Within the attempt budget the decision is per-task constant;
           past it the fault clears (transient). *)
        Alcotest.(check bool) "attempt 2 same as 1" a
          (Exec.Fault.should_fail t ~task ~attempt:2);
        Alcotest.(check bool) "attempt 3 clears" false
          (Exec.Fault.should_fail t ~task ~attempt:3);
        if a then incr hits
      done;
      (* p = 0.5 over 200 tasks: a degenerate plan (none or all faulted)
         would make every chaos test vacuous. *)
      Alcotest.(check bool) "plan is non-degenerate" true (!hits > 20 && !hits < 180)

(* --- Exec.Pool supervision ------------------------------------------------- *)

let test_supervised_retry_replays_bit_identically () =
  (* A task that fails on its first attempt and succeeds on the second
     must produce exactly the value of an undisturbed run: attempts
     re-derive everything from the task index. *)
  let value k = Printf.sprintf "task-%d" k in
  let task ~attempt k = if k mod 3 = 0 && attempt = 1 then failwith "transient" else value k in
  Exec.Pool.with_pool ~domains:2 (fun pool ->
      let outcomes = Exec.Pool.map_supervised ~retries:1 pool 10 task in
      Array.iteri
        (fun k outcome ->
          match outcome with
          | Exec.Pool.Done v -> Alcotest.(check string) "retried value" (value k) v
          | Exec.Pool.Failed { error; _ } -> Alcotest.failf "task %d failed: %s" k error
          | Exec.Pool.Cancelled -> Alcotest.failf "task %d cancelled" k)
        outcomes)

let test_supervised_exhausted_retries_fail () =
  let task ~attempt:_ k = if k = 2 then failwith "persistent" else k in
  let outcomes =
    Exec.Pool.with_pool ~domains:1 (fun pool -> Exec.Pool.map_supervised ~retries:2 pool 4 task)
  in
  (match outcomes.(2) with
  | Exec.Pool.Failed { attempts; error } ->
      Alcotest.(check int) "attempts = retries + 1" 3 attempts;
      Alcotest.(check bool) "error names the exception" true
        (Astring_contains.contains error "persistent")
  | Exec.Pool.Done _ | Exec.Pool.Cancelled -> Alcotest.fail "task 2 should have failed");
  List.iter
    (fun k ->
      match outcomes.(k) with
      | Exec.Pool.Done v -> Alcotest.(check int) "unaffected task" k v
      | _ -> Alcotest.failf "task %d should have succeeded" k)
    [ 0; 1; 3 ]

let test_supervised_cancellation_at_task_boundaries () =
  (* domains:1 runs tasks in index order on the caller: task 2 requests
     cancellation (and still completes); tasks after it never start. *)
  Fun.protect ~finally:Exec.Cancel.reset (fun () ->
      Exec.Cancel.reset ();
      let task ~attempt:_ k =
        if k = 2 then Exec.Cancel.request ();
        k
      in
      let outcomes =
        Exec.Pool.with_pool ~domains:1 (fun pool ->
            Exec.Pool.map_supervised pool 5 task)
      in
      let shape =
        Array.to_list outcomes
        |> List.map (function
             | Exec.Pool.Done _ -> "done"
             | Exec.Pool.Failed _ -> "failed"
             | Exec.Pool.Cancelled -> "cancelled")
      in
      Alcotest.(check (list string)) "boundary semantics"
        [ "done"; "done"; "done"; "cancelled"; "cancelled" ]
        shape)

let test_map_after_shutdown_raises () =
  let pool = Exec.Pool.create ~domains:2 () in
  Exec.Pool.shutdown pool;
  Alcotest.check_raises "map on a shut-down pool"
    (Invalid_argument "Exec.Pool.map: pool is shut down") (fun () ->
      ignore (Exec.Pool.map pool 4 Fun.id))

(* --- Sim.Checkpoint -------------------------------------------------------- *)

let sample_key trial =
  { Sim.Checkpoint.geometry = "xor"; bits = 8; q = 0.2; pairs = 300; seed = 11; trial }

let test_checkpoint_store_roundtrip () =
  with_temp_file (fun path ->
      let ck = Sim.Checkpoint.create ~interval:100 ~path () in
      let ok =
        Sim.Checkpoint.Trial
          { Sim.Checkpoint.delivered = 280; attempted = 300; alive_fraction = 0.8125;
            hops = [ 3; 4; 5 ] }
      in
      let failed =
        Sim.Checkpoint.Failed
          { attempts = 2; error = "bad \"quote\" and\nnewline" }
      in
      Sim.Checkpoint.record ck (sample_key 0) ok;
      Sim.Checkpoint.record ck (sample_key 1) failed;
      Sim.Checkpoint.flush ck;
      let reloaded = Sim.Checkpoint.load ~path () in
      Alcotest.(check int) "two entries" 2 (Sim.Checkpoint.length reloaded);
      Alcotest.(check bool) "trial round-trips" true
        (Sim.Checkpoint.find reloaded (sample_key 0) = Some ok);
      Alcotest.(check bool) "failure round-trips (escaped error)" true
        (Sim.Checkpoint.find reloaded (sample_key 1) = Some failed);
      (* Rewriting the reloaded store must reproduce the file byte for
         byte: entry order is canonical, floats are exact. *)
      let first = read_file path in
      Sim.Checkpoint.flush reloaded;
      Alcotest.(check string) "stable bytes across reload + rewrite" first (read_file path))

let test_checkpoint_missing_and_corrupt () =
  with_temp_file (fun path ->
      Sys.remove path;
      let ck = Sim.Checkpoint.load ~path () in
      Alcotest.(check int) "missing file = empty store" 0 (Sim.Checkpoint.length ck);
      let oc = open_out path in
      output_string oc "{\"v\": 1, \"kind\": \"dht_rcm-checkpoint\"}\nnot json at all\n";
      close_out oc;
      (match Sim.Checkpoint.load ~path () with
      | _ -> Alcotest.fail "corrupt checkpoint accepted"
      | exception Failure msg ->
          Alcotest.(check bool) "error names the file and line" true
            (Astring_contains.contains msg path && Astring_contains.contains msg "line 2"));
      let oc = open_out path in
      output_string oc "{\"v\": 999, \"kind\": \"dht_rcm-checkpoint\"}\n";
      close_out oc;
      match Sim.Checkpoint.load ~path () with
      | _ -> Alcotest.fail "future version accepted"
      | exception Failure _ -> ())

(* --- Sim.Estimate under supervision ---------------------------------------- *)

let test_sweep_transient_fault_plus_retry_bit_identical () =
  let baseline = Sim.Estimate.run_sweep cfg qs in
  match Exec.Fault.parse "trial:0.4:5" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok fault ->
      List.iter
        (fun domains ->
          Exec.Pool.with_pool ~domains (fun pool ->
              let sweep = Sim.Estimate.run_sweep ~pool ~retries:1 ~fault cfg qs in
              check_same_sweep (Printf.sprintf "%d domains" domains) baseline sweep;
              List.iter
                (fun (_, r) ->
                  Alcotest.(check int) "no failures survive one retry" 0
                    r.Sim.Estimate.failed_trials)
                sweep))
        [ 1; 2 ]

let test_sweep_persistent_fault_counts_failures_exactly () =
  match Exec.Fault.parse "trial:0.5:77:3" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok fault ->
      let retries = 1 in
      let sweep = Sim.Estimate.run_sweep ~retries ~fault cfg qs in
      List.iteri
        (fun qi (_, r) ->
          (* The failing subset is a pure function of the task index, so
             the supervisor's accounting can be predicted exactly. *)
          let predicted = ref 0 in
          for j = 0 to cfg.Sim.Estimate.trials - 1 do
            if
              Exec.Fault.should_fail fault
                ~task:((qi * cfg.Sim.Estimate.trials) + j)
                ~attempt:(retries + 1)
            then incr predicted
          done;
          Alcotest.(check int) "failed_trials matches the fault plan" !predicted
            r.Sim.Estimate.failed_trials;
          Alcotest.(check int) "attempted covers surviving trials only"
            ((cfg.Sim.Estimate.trials - !predicted) * cfg.Sim.Estimate.pairs_per_trial)
            r.Sim.Estimate.attempted)
        sweep

let test_sweep_all_trials_failed_reports_no_estimate () =
  match Exec.Fault.parse "trial:1:1:5" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok fault ->
      let sweep = Sim.Estimate.run_sweep ~fault cfg [ 0.2 ] in
      (match sweep with
      | [ (_, r) ] ->
          Alcotest.(check int) "all trials failed" cfg.Sim.Estimate.trials
            r.Sim.Estimate.failed_trials;
          Alcotest.(check bool) "no fabricated CI" true (r.Sim.Estimate.ci = None);
          Alcotest.(check bool) "alive fraction is nan" true
            (Float.is_nan r.Sim.Estimate.mean_alive_fraction);
          let rendered = Fmt.str "%a" Sim.Estimate.pp_result r in
          Alcotest.(check bool) "pp names the failure" true
            (Astring_contains.contains rendered "every trial failed")
      | _ -> Alcotest.fail "expected one grid point")

let test_sweep_checkpoint_resume_bit_identical () =
  let baseline = Sim.Estimate.run_sweep cfg qs in
  with_temp_file (fun path ->
      (* Full checkpointed run: same numbers, file on disk. *)
      let ck = Sim.Checkpoint.create ~interval:3 ~path () in
      check_same_sweep "checkpointed" baseline
        (Sim.Estimate.run_sweep ~checkpoint:ck cfg qs);
      let full_file = read_file path in
      let entries = List.length qs * cfg.Sim.Estimate.trials in
      Alcotest.(check int) "every trial recorded" entries (Sim.Checkpoint.length ck);
      (* Simulate an interruption: keep the header and the first half of
         the entries, as if the process died between flushes. *)
      let lines = String.split_on_char '\n' full_file in
      let truncated =
        List.filteri (fun i _ -> i <= (entries / 2)) lines |> String.concat "\n"
      in
      let oc = open_out path in
      output_string oc truncated;
      close_out oc;
      let resumed = Sim.Checkpoint.load ~path () in
      Alcotest.(check bool) "resume starts from a partial store" true
        (Sim.Checkpoint.length resumed < entries);
      Exec.Pool.with_pool ~domains:2 (fun pool ->
          check_same_sweep "resumed" baseline
            (Sim.Estimate.run_sweep ~pool ~checkpoint:resumed cfg qs));
      (* And the completed checkpoint file is restored byte for byte. *)
      Alcotest.(check string) "final checkpoint file identical" full_file (read_file path))

let test_sweep_resume_replays_failures () =
  (* Failed trials are stored too: resuming under the same fault plan
     replays them from the store (same report, no wasted recompute). *)
  match Exec.Fault.parse "trial:0.5:77:5" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok fault ->
      with_temp_file (fun path ->
          let ck = Sim.Checkpoint.create ~path () in
          let first = Sim.Estimate.run_sweep ~fault ~checkpoint:ck cfg qs in
          let reloaded = Sim.Checkpoint.load ~path () in
          (* No [~fault]: anything re-run would now succeed, so identical
             results prove every outcome was replayed from the store. *)
          let second = Sim.Estimate.run_sweep ~checkpoint:reloaded cfg qs in
          check_same_sweep "replayed" first second;
          Alcotest.(check bool) "some trials did fail" true
            (List.exists (fun (_, r) -> r.Sim.Estimate.failed_trials > 0) first))

let test_sweep_cancellation_raises_and_flushes () =
  Fun.protect ~finally:Exec.Cancel.reset (fun () ->
      Exec.Cancel.reset ();
      Exec.Cancel.request ();
      with_temp_file (fun path ->
          let ck = Sim.Checkpoint.create ~path () in
          (match Sim.Estimate.run_sweep ~supervise:true ~checkpoint:ck cfg qs with
          | _ -> Alcotest.fail "cancelled sweep returned results"
          | exception Exec.Cancel.Cancelled -> ());
          (* The checkpoint was flushed on the way out: the file exists
             and is a loadable (empty) store. *)
          Alcotest.(check bool) "checkpoint file written" true (Sys.file_exists path);
          Alcotest.(check int) "no trials ran" 0
            (Sim.Checkpoint.length (Sim.Checkpoint.load ~path ()))))

let test_unsupervised_sweep_still_raises () =
  (* Without any supervision option the historical contract holds: a
     trial exception aborts the sweep. *)
  match Exec.Fault.parse "trial:1:1:5" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok fault ->
      let task_exn = ref false in
      (try
         ignore
           (Sim.Estimate.run_sweep
              { cfg with Sim.Estimate.trials = 1 }
              ~retries:0
              ~fault (* fault implies supervision; this checks the flag wiring *)
              [ 0.2 ])
       with Exec.Fault.Injected _ -> task_exn := true);
      Alcotest.(check bool) "fault implies supervision (no raise)" false !task_exn

let suite =
  [
    ("fault: parse round-trip and rejection", `Quick, test_fault_parse_roundtrip);
    ("fault: deterministic, attempt-bounded", `Quick,
      test_fault_deterministic_and_attempt_bounded);
    ("supervised: retry replays bit-identically", `Quick,
      test_supervised_retry_replays_bit_identically);
    ("supervised: exhausted retries fail with attempts", `Quick,
      test_supervised_exhausted_retries_fail);
    ("supervised: cancellation at task boundaries", `Quick,
      test_supervised_cancellation_at_task_boundaries);
    ("pool: map after shutdown raises", `Quick, test_map_after_shutdown_raises);
    ("checkpoint: store round-trip, stable bytes", `Quick, test_checkpoint_store_roundtrip);
    ("checkpoint: missing file empty, corrupt rejected", `Quick,
      test_checkpoint_missing_and_corrupt);
    ("sweep: transient fault + retry bit-identical", `Quick,
      test_sweep_transient_fault_plus_retry_bit_identical);
    ("sweep: persistent fault counts failures exactly", `Quick,
      test_sweep_persistent_fault_counts_failures_exactly);
    ("sweep: all trials failed -> no estimate", `Quick,
      test_sweep_all_trials_failed_reports_no_estimate);
    ("sweep: checkpoint interrupt/resume bit-identical", `Quick,
      test_sweep_checkpoint_resume_bit_identical);
    ("sweep: resume replays stored failures", `Quick, test_sweep_resume_replays_failures);
    ("sweep: cancellation raises and flushes", `Quick,
      test_sweep_cancellation_raises_and_flushes);
    ("sweep: fault alone implies supervision", `Quick, test_unsupervised_sweep_still_raises);
  ]
