(** Quorum thresholds for replicated reads and writes.

    A key has [r] replicas; a write must install on [wq] of them and a
    read must assemble [rq] fresh copies. When [rq + wq > r] any read
    quorum intersects any write quorum, so a successful read observes
    the latest successful write (read-your-writes) — the standard
    Dynamo/Cassandra-style algebra, as in NomadFS's quorum layer. *)

type t = private { r : int; rq : int; wq : int }

val make : r:int -> rq:int -> wq:int -> t
(** @raise Invalid_argument unless [1 <= rq <= r] and [1 <= wq <= r]. *)

val majority : r:int -> t
(** Both thresholds at ⌊r/2⌋ + 1 — the smallest symmetric
    read-your-writes configuration. *)

val read_your_writes : t -> bool
(** [rq + wq > r]. *)

type read_outcome =
  | Quorum  (** reached >= rq holders: a fresh, consistent read *)
  | Degraded of int
      (** reached this many holders, 0 < reached < rq: data returned
          but possibly stale (no intersection guarantee) *)
  | Unavailable  (** reached no holder at all *)

val classify : t -> reached:int -> read_outcome
(** @raise Invalid_argument if [reached] is negative. *)

val threshold_of_string : r:int -> string -> (int, string) result
(** Parses a CLI threshold spec against replication degree [r]:
    ["majority"] -> ⌊r/2⌋ + 1, ["one"] -> 1, ["all"] -> [r], or an
    integer in [1, r]. *)

val pp : Format.formatter -> t -> unit
(** Renders as ["R=3 Rq=2 Wq=2"]. *)
