(** Arithmetic on non-negative reals represented by their natural log.

    The RCM routability of a geometry at N = 2^100 involves binomial
    coefficients near 1e29 multiplied by tiny success probabilities and
    divided by a 1e30 denominator; doing this in the log domain keeps
    every intermediate exactly representable. A value [x : t] represents
    the real e^x, with [neg_infinity] representing 0. *)

type t = private float

val zero : t
val one : t

val of_float : float -> t
(** [of_float x] represents [x]. @raise Invalid_argument if [x < 0]. *)

val of_log : float -> t
(** [of_log l] is the value whose natural log is [l] (unchecked). *)

val to_float : t -> float
(** [to_float x] is the represented real; underflows to [0.] or overflows
    to [infinity] when outside float range. *)

val to_log : t -> float

val is_zero : t -> bool

val mul : t -> t -> t
val div : t -> t -> t

val add : t -> t -> t
(** Overflow-safe log-sum-exp of two values. *)

val sub : t -> t -> t
(** [sub a b] is a - b in the represented domain.
    @raise Invalid_argument if [b > a]. *)

val compare : t -> t -> int

val sum : t array -> t
(** Compensated log-sum-exp over an array. *)

val sum_fn : lo:int -> hi:int -> (int -> t) -> t
(** [sum_fn ~lo ~hi f] sums [f i] for [i] in [lo..hi]; [zero] when empty. *)

val pow : t -> float -> t
(** [pow x k] is x^k. *)

val pp : Format.formatter -> t -> unit
