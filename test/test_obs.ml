(* The observability layer: metrics arithmetic, trace JSONL shape, and
   the zero-interference contract — turning instrumentation on must not
   change a single simulated bit. *)

let contains_substring haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let with_metrics f =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

let test_counters () =
  with_metrics (fun () ->
      let c = Obs.Metrics.counter "test/count" in
      Obs.Metrics.incr c;
      Obs.Metrics.incr ~by:4 c;
      Alcotest.(check int) "1 + 4" 5 (Obs.Metrics.counter_value c);
      Obs.Metrics.incr_named "test/named";
      let snap = Obs.Metrics.snapshot () in
      Alcotest.(check (option int)) "snapshot sees interned counter" (Some 5)
        (List.assoc_opt "test/count" snap.Obs.Metrics.counters);
      Alcotest.(check (option int)) "snapshot sees named counter" (Some 1)
        (List.assoc_opt "test/named" snap.Obs.Metrics.counters))

let test_histograms () =
  with_metrics (fun () ->
      let h = Obs.Metrics.histogram "test/hist" in
      List.iter (fun v -> Obs.Metrics.observe h (float_of_int v)) [ 1; 2; 3; 4; 5; 6; 7; 8 ];
      let snap = Obs.Metrics.snapshot () in
      match List.assoc_opt "test/hist" snap.Obs.Metrics.histograms with
      | None -> Alcotest.fail "histogram missing from snapshot"
      | Some s ->
          Alcotest.(check int) "count" 8 s.Obs.Metrics.count;
          Alcotest.(check (float 1e-9)) "sum" 36.0 s.Obs.Metrics.sum;
          Alcotest.(check (float 1e-9)) "min" 1.0 s.Obs.Metrics.min;
          Alcotest.(check (float 1e-9)) "max" 8.0 s.Obs.Metrics.max;
          Alcotest.(check (float 1e-9)) "mean" 4.5 s.Obs.Metrics.mean;
          (* Quantiles have power-of-two bucket resolution: they must
             bracket the exact value from above, never undershoot it. *)
          Alcotest.(check bool)
            (Printf.sprintf "p50 = %g in [4, 8]" s.Obs.Metrics.p50)
            true
            (s.Obs.Metrics.p50 >= 4.0 && s.Obs.Metrics.p50 <= 8.0);
          Alcotest.(check bool)
            (Printf.sprintf "p90 = %g in [p50, max]" s.Obs.Metrics.p90)
            true
            (s.Obs.Metrics.p90 >= s.Obs.Metrics.p50 && s.Obs.Metrics.p90 <= 8.0))

let test_disabled_is_noop () =
  Obs.Metrics.reset ();
  Alcotest.(check bool) "disabled by default in tests" false (Obs.Metrics.enabled ());
  let c = Obs.Metrics.counter "test/disabled" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe_named "test/disabled-hist" 1.0;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check (float 0.0)) "now () skips the clock" 0.0 (Obs.Metrics.now ());
  let snap = Obs.Metrics.snapshot () in
  (match List.assoc_opt "test/disabled-hist" snap.Obs.Metrics.histograms with
  | Some s -> Alcotest.(check int) "histogram untouched" 0 s.Obs.Metrics.count
  | None -> ());
  Obs.Metrics.reset ()

let test_json_snapshot_shape () =
  with_metrics (fun () ->
      Obs.Metrics.incr_named "test/a";
      Obs.Metrics.observe_named "test/b" 0.5;
      let json = Obs.Metrics.to_json () in
      List.iter
        (fun fragment ->
          Alcotest.(check bool)
            (Printf.sprintf "json contains %s" fragment)
            true
            (contains_substring json fragment))
        [ {|"counters"|}; {|"histograms"|}; {|"test/a": 1|}; {|"test/b"|}; {|"count": 1|} ])

let run_estimate () =
  Sim.Estimate.run
    (Sim.Estimate.config ~trials:2 ~pairs_per_trial:200 ~seed:7 ~bits:8 ~q:0.3
       Rcm.Geometry.Xor)

(* The acceptance contract of the whole layer: instrumentation observes
   the engine, it never participates. Results with metrics + tracing on
   must be bit-identical to results with everything off. *)
let test_instrumentation_preserves_results () =
  Obs.Metrics.set_enabled false;
  let plain = run_estimate () in
  let trace_path = Filename.temp_file "dht_rcm_test" ".jsonl" in
  let observed =
    with_metrics (fun () -> Obs.Trace.with_file trace_path (fun () -> run_estimate ()))
  in
  Fun.protect
    ~finally:(fun () -> Sys.remove trace_path)
    (fun () ->
      Alcotest.(check int) "delivered" plain.Sim.Estimate.delivered
        observed.Sim.Estimate.delivered;
      Alcotest.(check int) "attempted" plain.Sim.Estimate.attempted
        observed.Sim.Estimate.attempted;
      Alcotest.(check int64) "mean_alive_fraction bits"
        (Int64.bits_of_float plain.Sim.Estimate.mean_alive_fraction)
        (Int64.bits_of_float observed.Sim.Estimate.mean_alive_fraction);
      Alcotest.(check int64) "routability bits"
        (Int64.bits_of_float (Sim.Estimate.routability plain))
        (Int64.bits_of_float (Sim.Estimate.routability observed)))

let test_trace_writes_jsonl () =
  let path = Filename.temp_file "dht_rcm_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.with_file path (fun () ->
          Alcotest.(check bool) "enabled while sink installed" true (Obs.Trace.enabled ());
          Obs.Trace.event "test/event" ~attrs:[ ("k", Obs.Trace.String "v") ] ();
          Alcotest.(check int) "span returns f's result" 3
            (Obs.Trace.span "test/span" (fun () -> 3));
          (* Spans must be emitted even when the body raises. *)
          try Obs.Trace.span "test/raise" (fun () -> failwith "boom")
          with Failure _ -> ());
      Alcotest.(check bool) "sink removed" false (Obs.Trace.enabled ());
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per record" 3 (List.length lines);
      List.iter
        (fun line ->
          Alcotest.(check bool)
            (Printf.sprintf "line is a JSON object: %s" line)
            true
            (String.length line > 2 && line.[0] = '{' && line.[String.length line - 1] = '}');
          List.iter
            (fun field ->
              Alcotest.(check bool)
                (Printf.sprintf "line has %s: %s" field line)
                true
                (contains_substring line field))
            [ {|"ts"|}; {|"kind"|}; {|"name"|}; {|"domain"|} ])
        lines;
      let span_lines =
        List.filter (fun l -> contains_substring l {|"kind": "span"|}) lines
      in
      Alcotest.(check int) "two spans (one from a raising body)" 2 (List.length span_lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "span has dur_s" true
            (contains_substring l {|"dur_s"|}))
        span_lines)

let test_disabled_span_runs_body () =
  Obs.Trace.close ();
  Alcotest.(check int) "span is identity when disabled" 7
    (Obs.Trace.span "test/none" (fun () -> 7));
  Obs.Trace.event "test/none" ()

(* JSON must stay standard: a histogram fed nan/inf renders those
   aggregates as null, never as a bare NaN token. *)
let test_json_non_finite_is_null () =
  with_metrics (fun () ->
      Obs.Metrics.observe_named "test/degraded-a" Float.nan;
      Obs.Metrics.observe_named "test/degraded-b" Float.infinity;
      let json = Obs.Metrics.to_json () in
      Alcotest.(check bool) "no NaN token" false (contains_substring json "nan");
      Alcotest.(check bool) "no inf token" false (contains_substring json "inf");
      Alcotest.(check bool) "null stands in" true (contains_substring json "null");
      (* The file must parse as real JSON despite the degraded values. *)
      match Obs.Tiny_json.parse json with
      | Obs.Tiny_json.Obj _ -> ()
      | _ -> Alcotest.fail "snapshot JSON did not parse to an object"
      | exception Obs.Tiny_json.Error msg ->
          Alcotest.fail ("snapshot JSON unparseable: " ^ msg))

let test_quantiles_empty_and_singleton () =
  with_metrics (fun () ->
      let h = Obs.Metrics.histogram "test/empty" in
      ignore h;
      let snap = Obs.Metrics.snapshot () in
      (match List.assoc_opt "test/empty" snap.Obs.Metrics.histograms with
      | None -> Alcotest.fail "registered empty histogram missing from snapshot"
      | Some s ->
          Alcotest.(check int) "empty count" 0 s.Obs.Metrics.count;
          Alcotest.(check (float 0.0)) "empty p50" 0.0 s.Obs.Metrics.p50;
          Alcotest.(check (float 0.0)) "empty p99" 0.0 s.Obs.Metrics.p99);
      Obs.Metrics.observe_named "test/single" 3.0;
      let snap = Obs.Metrics.snapshot () in
      match List.assoc_opt "test/single" snap.Obs.Metrics.histograms with
      | None -> Alcotest.fail "singleton histogram missing from snapshot"
      | Some s ->
          Alcotest.(check int) "singleton count" 1 s.Obs.Metrics.count;
          (* With one sample every quantile is that sample (the bucket
             estimate is clamped to the exact max). *)
          List.iter
            (fun (label, v) -> Alcotest.(check (float 1e-9)) label 3.0 v)
            [
              ("p50", s.Obs.Metrics.p50);
              ("p90", s.Obs.Metrics.p90);
              ("p99", s.Obs.Metrics.p99);
              ("min", s.Obs.Metrics.min);
              ("max", s.Obs.Metrics.max);
            ])

let test_reset_preserves_registration () =
  with_metrics (fun () ->
      let c = Obs.Metrics.counter "test/reset-c" in
      Obs.Metrics.incr ~by:3 c;
      Obs.Metrics.observe_named "test/reset-h" 1.5;
      Obs.Metrics.reset ();
      Alcotest.(check bool) "still enabled" true (Obs.Metrics.enabled ());
      let snap = Obs.Metrics.snapshot () in
      Alcotest.(check (option int)) "counter still registered, zeroed" (Some 0)
        (List.assoc_opt "test/reset-c" snap.Obs.Metrics.counters);
      (match List.assoc_opt "test/reset-h" snap.Obs.Metrics.histograms with
      | None -> Alcotest.fail "histogram lost by reset"
      | Some s -> Alcotest.(check int) "histogram zeroed" 0 s.Obs.Metrics.count);
      (* The interned handle keeps working after reset. *)
      Obs.Metrics.incr c;
      Alcotest.(check int) "handle survives reset" 1 (Obs.Metrics.counter_value c))

(* Prometheus exposition: every sample line must carry a legal metric
   name, counters must be non-negative integers, each family gets
   exactly one TYPE line, and a "[k=v]" internal suffix becomes a real
   label so a q-grid stays one family. *)
let test_prometheus_renderer () =
  with_metrics (fun () ->
      Obs.Metrics.incr_named ~by:7 "test/prom count";
      Obs.Metrics.observe_named "test/lat[q=0.5]" 0.25;
      Obs.Metrics.observe_named "test/lat[q=0.9]" 0.5;
      let text = Obs.Metrics.to_prometheus () in
      let lines =
        List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
      in
      Alcotest.(check bool) "renders something" true (lines <> []);
      let legal_name n =
        n <> ""
        && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
        && String.for_all
             (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
             n
      in
      let sample_name line =
        let stop =
          match (String.index_opt line '{', String.index_opt line ' ') with
          | Some b, Some s -> Stdlib.min b s
          | Some b, None -> b
          | None, Some s -> s
          | None, None -> String.length line
        in
        String.sub line 0 stop
      in
      let type_lines = ref [] in
      List.iter
        (fun line ->
          if String.length line > 0 && line.[0] = '#' then begin
            (match String.split_on_char ' ' line with
            | "#" :: "TYPE" :: family :: _ ->
                Alcotest.(check bool) ("legal family name " ^ family) true (legal_name family);
                Alcotest.(check bool) ("one TYPE line for " ^ family) false
                  (List.mem family !type_lines);
                type_lines := family :: !type_lines
            | _ -> Alcotest.fail ("unexpected comment line: " ^ line))
          end
          else begin
            let name = sample_name line in
            Alcotest.(check bool) ("legal sample name " ^ name) true (legal_name name);
            Alcotest.(check bool) ("dhtlab_ prefix on " ^ name) true
              (String.length name > 7 && String.sub name 0 7 = "dhtlab_")
          end)
        lines;
      (* Counter sample: monotone (non-negative integer) with _total. *)
      let counter_line =
        List.find
          (fun l ->
            l.[0] <> '#' && contains_substring l "dhtlab_test_prom_count_total")
          lines
      in
      (match String.split_on_char ' ' counter_line with
      | [ _; v ] ->
          (match int_of_string_opt v with
          | Some n -> Alcotest.(check bool) "counter non-negative" true (n >= 0)
          | None -> Alcotest.fail ("counter value not an integer: " ^ v))
      | _ -> Alcotest.fail ("malformed counter line: " ^ counter_line));
      (* The [q=...] suffix became a label on one shared family. *)
      Alcotest.(check bool) "q label extracted" true
        (contains_substring text {|q="0.5"|} && contains_substring text {|q="0.9"|});
      Alcotest.(check bool) "summary quantiles present" true
        (contains_substring text {|quantile="0.5"|}
        && contains_substring text {|quantile="0.99"|});
      Alcotest.(check bool) "summary count sample" true
        (contains_substring text "dhtlab_test_lat_count"))

let count_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      !n)

(* The flush satellite: a hard-killed run must find most of its records
   already on disk in the staging .tmp, not in a channel buffer. *)
let test_trace_flushes_periodically () =
  let path = Filename.temp_file "dht_rcm_test" ".jsonl" in
  let tmp = path ^ ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.close ();
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      Obs.Trace.open_file path;
      for i = 1 to Obs.Trace.flush_interval do
        Obs.Trace.event (Printf.sprintf "test/flush%d" i) ()
      done;
      Alcotest.(check bool) "staging .tmp exists mid-run" true (Sys.file_exists tmp);
      Alcotest.(check int)
        (Printf.sprintf "all %d records flushed without close" Obs.Trace.flush_interval)
        Obs.Trace.flush_interval (count_lines tmp);
      Obs.Trace.event "test/straggler" ();
      Obs.Trace.flush ();
      Alcotest.(check int) "explicit flush pushes the straggler"
        (Obs.Trace.flush_interval + 1) (count_lines tmp);
      Obs.Trace.close ();
      Alcotest.(check bool) ".tmp renamed away on close" false (Sys.file_exists tmp);
      Alcotest.(check int) "final file complete" (Obs.Trace.flush_interval + 1)
        (count_lines path))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_progress_renders_and_off_is_silent () =
  let path = Filename.temp_file "dht_rcm_test" ".progress" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Progress.set_mode Obs.Progress.Off;
      Obs.Progress.set_channel stderr;
      Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.Progress.set_channel oc;
      Obs.Progress.set_mode Obs.Progress.On;
      Obs.Progress.start ~label:"xor" ~groups:[ ("q=0.1", 2) ] ~total:2 ();
      Alcotest.(check bool) "active while started" true (Obs.Progress.active ());
      Obs.Progress.tick ~group:"q=0.1" ();
      Obs.Progress.note_retry ();
      Obs.Progress.tick ~group:"q=0.1" ();
      Obs.Progress.finish ();
      Alcotest.(check bool) "inactive after finish" false (Obs.Progress.active ());
      close_out oc;
      let out = read_file path in
      Alcotest.(check bool) "painted the completion state" true
        (contains_substring out "2/2");
      Alcotest.(check bool) "shows the label" true (contains_substring out "xor");
      Alcotest.(check bool) "shows the retry count" true (contains_substring out "retried 1");
      Alcotest.(check bool) "carriage-return repaints, no newline spam" false
        (contains_substring out "\n");
      (* Off mode: the same sequence must write nothing at all. *)
      let oc = open_out path in
      Obs.Progress.set_channel oc;
      Obs.Progress.set_mode Obs.Progress.Off;
      Obs.Progress.start ~total:2 ();
      Obs.Progress.tick ();
      Obs.Progress.finish ();
      close_out oc;
      Alcotest.(check string) "Off writes nothing" "" (read_file path))

let test_manifest_roundtrip () =
  let dir = Filename.temp_file "dht_rcm_test" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let manifest_path = Filename.concat dir "manifest.json" in
  let artefact = Filename.concat dir "out.csv" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ manifest_path; artefact ];
      Sys.rmdir dir)
    (fun () ->
      let oc = open_out artefact in
      output_string oc "x,y\n1,2\n";
      close_out oc;
      Obs.Manifest.start ~argv:[ "dhtlab"; "test" ] ~path:manifest_path;
      Alcotest.(check bool) "active after start" true (Obs.Manifest.active ());
      Obs.Manifest.note "seed" (Obs.Manifest.Int 42);
      Obs.Manifest.note "seed" (Obs.Manifest.Int 7) (* last write wins *);
      Obs.Manifest.note "geometries" (Obs.Manifest.Strings [ "xor"; "ring" ]);
      Obs.Manifest.add_artefact ~kind:"csv" artefact;
      Obs.Manifest.add_artefact ~kind:"csv" artefact (* deduped *);
      Obs.Manifest.add_artefact ~kind:"checkpoint" (Filename.concat dir "missing.jsonl");
      Obs.Manifest.finish ~exit_status:0;
      Alcotest.(check bool) "inactive after finish" false (Obs.Manifest.active ());
      Alcotest.(check bool) "no .tmp left" false
        (Sys.file_exists (manifest_path ^ ".tmp"));
      let json = Obs.Tiny_json.parse (read_file manifest_path) in
      let open Obs.Tiny_json in
      let get key = Option.get (member key json) in
      Alcotest.(check (option int)) "v" (Some 1) (to_int (get "v"));
      Alcotest.(check (option string)) "kind" (Some "dht_rcm-manifest") (to_str (get "kind"));
      Alcotest.(check (option int)) "exit_status" (Some 0) (to_int (get "exit_status"));
      Alcotest.(check bool) "hostname recorded" true (to_str (get "hostname") <> None);
      Alcotest.(check (option string)) "ocaml_version" (Some Sys.ocaml_version)
        (to_str (get "ocaml_version"));
      let notes = get "notes" in
      Alcotest.(check (option int)) "last note wins" (Some 7)
        (to_int (Option.get (member "seed" notes)));
      (match to_list (Option.get (member "geometries" notes)) with
      | Some [ a; b ] ->
          Alcotest.(check (option string)) "strings note" (Some "xor") (to_str a);
          Alcotest.(check (option string)) "strings note" (Some "ring") (to_str b)
      | _ -> Alcotest.fail "geometries note not a 2-element array");
      match to_list (get "artefacts") with
      | Some [ csv; missing ] ->
          Alcotest.(check (option string)) "artefact path" (Some artefact)
            (to_str (Option.get (member "path" csv)));
          Alcotest.(check (option int)) "artefact bytes" (Some 8)
            (to_int (Option.get (member "bytes" csv)));
          Alcotest.(check (option string)) "artefact md5 matches Digest"
            (Some (Digest.to_hex (Digest.file artefact)))
            (to_str (Option.get (member "md5" csv)));
          (match member "exists" missing with
          | Some (Bool false) -> ()
          | _ -> Alcotest.fail "missing artefact not recorded with exists:false")
      | _ -> Alcotest.fail "expected exactly two artefacts (duplicate not deduped?)")

let test_heartbeat_beats_and_stops () =
  Alcotest.check_raises "non-positive interval rejected"
    (Invalid_argument "Obs.Heartbeat.start: interval must be positive") (fun () ->
      Obs.Heartbeat.start ~interval_s:0.0 (fun () -> ()));
  let beats = Atomic.make 0 in
  Obs.Heartbeat.start ~interval_s:0.02 (fun () -> Atomic.incr beats);
  Alcotest.(check bool) "active while running" true (Obs.Heartbeat.active ());
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get beats < 2 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  Alcotest.(check bool) "beat at least twice" true (Atomic.get beats >= 2);
  Obs.Heartbeat.stop ();
  Alcotest.(check bool) "inactive after stop" false (Obs.Heartbeat.active ());
  let after = Atomic.get beats in
  Unix.sleepf 0.06;
  Alcotest.(check int) "no beat after stop" after (Atomic.get beats);
  Obs.Heartbeat.stop () (* idempotent *)

let suite =
  [
    ("metrics: counters", `Quick, test_counters);
    ("metrics: histograms", `Quick, test_histograms);
    ("metrics: disabled is a no-op", `Quick, test_disabled_is_noop);
    ("metrics: json snapshot shape", `Quick, test_json_snapshot_shape);
    ("metrics: non-finite values render as null", `Quick, test_json_non_finite_is_null);
    ("metrics: quantiles at count 0 and 1", `Quick, test_quantiles_empty_and_singleton);
    ("metrics: reset preserves registration", `Quick, test_reset_preserves_registration);
    ("metrics: prometheus exposition", `Quick, test_prometheus_renderer);
    ("obs: instrumentation preserves results", `Quick, test_instrumentation_preserves_results);
    ("trace: writes one JSON object per line", `Quick, test_trace_writes_jsonl);
    ("trace: disabled span runs body", `Quick, test_disabled_span_runs_body);
    ("trace: flushes every K records", `Quick, test_trace_flushes_periodically);
    ("progress: renders On, silent Off", `Quick, test_progress_renders_and_off_is_silent);
    ("manifest: roundtrip with checksums", `Quick, test_manifest_roundtrip);
    ("heartbeat: beats and stops", `Quick, test_heartbeat_beats_and_stops);
  ]
