(* Lanczos approximation with g = 7 and 9 coefficients; relative error is
   below 1e-13 over the positive real axis, which is more than enough for
   log-binomial coefficients at d = 100. *)
let lanczos_g = 7.0

let lanczos_coefficients =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let pi = 4.0 *. atan 1.0

let log_sqrt_two_pi = 0.5 *. log (2.0 *. pi)

let rec log_gamma x =
  if Float.is_nan x then nan
  else if x <= 0.0 && Float.is_integer x then infinity
  else if x < 0.5 then
    (* Reflection formula keeps the Lanczos series in its accurate range. *)
    log (pi /. Float.abs (sin (pi *. x))) -. log_gamma (1.0 -. x)
  else
    let x = x -. 1.0 in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    log_sqrt_two_pi +. (((x +. 0.5) *. log t) -. t) +. log !acc

let log_factorial_cache_size = 257

let log_factorial_cache =
  lazy
    (let cache = Array.make log_factorial_cache_size 0.0 in
     for n = 2 to log_factorial_cache_size - 1 do
       cache.(n) <- cache.(n - 1) +. log (float_of_int n)
     done;
     cache)

let log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: negative argument"
  else if n < log_factorial_cache_size then (Lazy.force log_factorial_cache).(n)
  else log_gamma (float_of_int n +. 1.0)

(* log(1 - exp x) for x <= 0, following Maechler's note: use expm1 near 0
   and log1p elsewhere to avoid cancellation at both ends. *)
let log1mexp x =
  if x > 0.0 then invalid_arg "Special.log1mexp: positive argument"
  else if x = 0.0 then neg_infinity
  else if x > -.Float.log 2.0 then log (-.Float.expm1 x)
  else Float.log1p (-.Float.exp x)

let log1pexp x =
  if x <= -37.0 then Float.exp x
  else if x <= 18.0 then Float.log1p (Float.exp x)
  else if x <= 33.3 then x +. Float.exp (-.x)
  else x
