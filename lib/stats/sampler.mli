(** Sampling helpers for Monte-Carlo routability estimation. *)

val indices_where : bool array -> int array
(** [indices_where mask] is the sorted array of indices set in [mask]
    (e.g. the surviving nodes of a failure trial). *)

val ordered_pair : Prng.Splitmix.t -> 'a array -> 'a * 'a
(** A uniform ordered pair of two distinct elements.
    @raise Invalid_argument when the pool has fewer than 2 elements. *)

val reservoir : Prng.Splitmix.t -> k:int -> 'a Seq.t -> 'a list
(** Reservoir sampling of up to [k] elements from a stream. *)
