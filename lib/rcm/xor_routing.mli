(** RCM analysis of the XOR (Kademlia) geometry — section 4.3.2.

    Bucket neighbours are chosen by matching a prefix, flipping one bit
    and randomising the rest, so n(h) = C(d,h) as for the tree; unlike
    the tree, a dead optimal neighbour can be bypassed by correcting a
    lower-order bit, giving the two-dimensional Markov chain of
    Fig. 5(b). *)

val log_population : d:int -> h:int -> float

val phase_failure : q:float -> m:int -> float
(** Q(m) of Eq. 6 in exact form. *)

val phase_failure_approx : q:float -> m:int -> float
(** The paper's e^(-x)-based approximation of Eq. 6 (for comparison
    only). *)

val success_probability : q:float -> h:int -> float
(** p(h,q) = prod_{m=1..h} (1 - Q(m)). *)

val spec : Spec.t
