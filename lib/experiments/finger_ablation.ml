type config = { bits : int; qs : float list; trials : int; pairs : int; seed : int }

let default_config = { bits = 12; qs = Grid.fig6_q; trials = 3; pairs = 2_000; seed = 404 }

(* A4: Chord finger placement. Deterministic fingers (distance exactly
   2^i) guarantee m usable fingers at phase m, so the ring analysis is a
   true routability lower bound; randomised fingers (distance uniform in
   [2^i, 2^(i+1))) can overshoot near the destination and dip slightly
   below the deterministic curve. *)
let run cfg =
  let sim ~build q =
    Stats.Binomial_ci.point
      (Table_sim.routability ~build ~q ~trials:cfg.trials ~pairs:cfg.pairs ~seed:cfg.seed)
  in
  Series.tabulate
    ~title:
      (Printf.sprintf "A4: Chord finger-placement ablation, N=2^%d (routability vs q)"
         cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    [
      ("analysis", fun q -> Rcm.Model.routability Rcm.Geometry.Ring ~d:cfg.bits ~q);
      ( "det-fingers",
        sim ~build:(fun rng -> Overlay.Table.build ~rng ~bits:cfg.bits Rcm.Geometry.Ring) );
      ( "rand-fingers",
        sim ~build:(fun rng -> Overlay.Table.build_randomized_ring ~rng ~bits:cfg.bits ()) );
    ]

let bound_violations ?(slack = 0.02) series =
  match (Series.find_column series "analysis", Series.find_column series "det-fingers") with
  | Some ana, Some det ->
      let out = ref [] in
      Array.iteri
        (fun i q ->
          if det.Series.values.(i) +. slack < ana.Series.values.(i) then
            out := (q, ana.Series.values.(i), det.Series.values.(i)) :: !out)
        series.Series.x;
      List.rev !out
  | None, _ | _, None -> invalid_arg "Finger_ablation.bound_violations: not an A4 series"
