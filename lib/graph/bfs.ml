let unreachable = -1

let distances ?alive graph ~source =
  let n = Digraph.node_count graph in
  if source < 0 || source >= n then invalid_arg "Bfs.distances: source outside graph";
  let is_alive v = match alive with None -> true | Some a -> a.(v) in
  let dist = Array.make n unreachable in
  if not (is_alive source) then dist
  else begin
    let queue = Queue.create () in
    dist.(source) <- 0;
    Queue.add source queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Digraph.iter_successors graph v (fun u ->
          if is_alive u && dist.(u) = unreachable then begin
            dist.(u) <- dist.(v) + 1;
            Queue.add u queue
          end)
    done;
    dist
  end

let reachable_count ?alive graph ~source =
  let dist = distances ?alive graph ~source in
  Array.fold_left (fun acc d -> if d > 0 then acc + 1 else acc) 0 dist

let eccentricity ?alive graph ~source =
  let dist = distances ?alive graph ~source in
  Array.fold_left (fun acc d -> if d > acc then d else acc) 0 dist
