(** CAN hypercube routing under failures (section 3.2): greedy bit
    correction in any order, choosing uniformly among alive useful
    neighbours. Delivered paths take exactly Hamming-distance hops. *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  rng:Prng.Splitmix.t ->
  alive:bool array ->
  src:int ->
  dst:int ->
  Outcome.t
