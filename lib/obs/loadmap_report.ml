(* Analysis layer over Loadmap: hot-spot summaries, load CDFs and the
   congestion statistics the hotspot figure plots. Pure functions of
   the counters — nothing here mutates the map or touches a PRNG. *)

type summary = {
  nodes : int;
  active_nodes : int;
  total : int;
  mean : float;
  max : int;
  congestion : float;
  gini : float;
}

(* Gini coefficient of a sorted-ascending count array, via the exact
   rank formula G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n with
   1-based ranks. 0 for a uniform load, -> 1 as one node absorbs
   everything; 0 by convention when nothing was recorded. *)
let gini_sorted sorted =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let sum = ref 0.0 and weighted = ref 0.0 in
    Array.iteri
      (fun i x ->
        let x = float_of_int x in
        sum := !sum +. x;
        weighted := !weighted +. (float_of_int (i + 1) *. x))
      sorted;
    if !sum <= 0.0 then 0.0
    else
      (2.0 *. !weighted /. (float_of_int n *. !sum))
      -. (float_of_int (n + 1) /. float_of_int n)
  end

let gini counts =
  let sorted = Array.copy counts in
  Array.sort compare sorted;
  gini_sorted sorted

let summarize_counts counts =
  let nodes = Array.length counts in
  let total = Array.fold_left ( + ) 0 counts in
  let max_load = Array.fold_left max 0 counts in
  let active_nodes =
    Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 counts
  in
  let mean = if nodes = 0 then 0.0 else float_of_int total /. float_of_int nodes in
  {
    nodes;
    active_nodes;
    total;
    mean;
    max = max_load;
    congestion = (if mean > 0.0 then float_of_int max_load /. mean else 0.0);
    gini = gini counts;
  }

let summarize t kind = summarize_counts (Loadmap.counts t kind)

(* CDF as (load value, fraction of nodes with load <= value), one point
   per distinct load value, ascending. *)
let cdf counts =
  let nodes = Array.length counts in
  if nodes = 0 then []
  else begin
    let sorted = Array.copy counts in
    Array.sort compare sorted;
    let points = ref [] in
    Array.iteri
      (fun i v ->
        (* keep only the last index of each run of equal values *)
        if i = nodes - 1 || sorted.(i + 1) <> v then
          points := (v, float_of_int (i + 1) /. float_of_int nodes) :: !points)
      sorted;
    List.rev !points
  end

(* Top-k hottest nodes as (node, load), load descending, node index
   ascending among ties — a total order, so the listing is
   deterministic. *)
let hottest ?(top = 10) counts =
  let nodes = Array.length counts in
  let order = Array.init nodes (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare counts.(b) counts.(a) with 0 -> compare a b | c -> c)
    order;
  let k = min top nodes in
  List.init k (fun i -> (order.(i), counts.(order.(i))))

(* Feed every per-node count into a loadmap/<kind> histogram so the
   existing snapshot/JSON/Prometheus pipeline renders the load
   distribution as dhtlab_loadmap_* summary families. Gated by the
   metrics flag inside observe; guard the name construction like every
   other dynamic call site. *)
let to_metrics t =
  if Metrics.enabled () then
    List.iter
      (fun kind ->
        let h = Metrics.histogram ("loadmap/" ^ Loadmap.kind_name kind) in
        let counts = Loadmap.counts t kind in
        Array.iter (fun c -> Metrics.observe h (float_of_int c)) counts)
      Loadmap.all_kinds

let pp_summary ppf (kind, s) =
  Format.fprintf ppf
    "%-14s total %d over %d/%d nodes  mean %.2f  max %d  congestion %.2f  gini %.3f"
    (Loadmap.kind_name kind) s.total s.active_nodes s.nodes s.mean s.max s.congestion
    s.gini

let pp ?(top = 10) ?pp_node ppf t =
  let pp_node = Option.value ~default:(fun v -> string_of_int v) pp_node in
  List.iter
    (fun kind ->
      let counts = Loadmap.counts t kind in
      let s = summarize_counts counts in
      Format.fprintf ppf "%a@\n" pp_summary (kind, s);
      if s.total > 0 && top > 0 then begin
        Format.fprintf ppf "  hottest:";
        List.iter
          (fun (node, load) ->
            if load > 0 then Format.fprintf ppf " %s:%d" (pp_node node) load)
          (hottest ~top counts);
        Format.fprintf ppf "@\n"
      end)
    Loadmap.all_kinds
