(** ReCord — base-h recursive-ring digit routing (Zeng & Hsu's
    generalisation of randomized Chord), the first geometry plugged in
    through the registry path.

    Linking this library (it is built with [-linkall]) registers the
    ["record"] family with every layer's hook registry: parsing and
    slugs ({!Rcm.Geometry}), the RCM closed form and routing chain
    ({!Rcm.Model} — the spec is {!Rcm.Digits.xor_spec} at
    [group = log2 h]), full and sparse table builders
    ({!Overlay.Table}, {!Overlay.Sparse}), scalar, batch-lane and
    sparse routers ({!Routing}), churn behaviour
    ({!Sim.Churn_profile}), replica placement ({!Storage.Placement})
    and the descriptor registry ({!Geom}). No code outside
    [lib/geom_record] pattern-matches the family; DESIGN.md's "Adding
    a geometry" section walks through this module as the worked
    example of the contract.

    The single parameter [h] (default 2, a power of two in 2..1024) is
    the digit base: identifiers are read as [d / log2 h] base-h
    digits, nodes keep one randomized contact per (digit level,
    alternative value) — degree [(h-1) · d / log2 h] — and routing
    greedily corrects the most significant differing digit with
    XOR-style fallback. At [h = 2] the family reproduces the built-in
    [xor] geometry draw-for-draw (pinned by the conformance tests). *)

val family : string
(** ["record"]. *)

val geometry : ?h:int -> unit -> Rcm.Geometry.t
(** A record instance, [Custom {family = "record"; params = [("h", h)]}].
    @raise Invalid_argument unless [h] is a power of two in 2..1024. *)
