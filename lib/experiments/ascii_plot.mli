(** Terminal line plots of {!Series} tables.

    Renders each column as a marker trace on a character canvas with a
    y-axis range annotation, an x-axis rule and a legend — enough to
    eyeball the paper's figure shapes straight from the CLI. *)

val markers : char array

val interpolate : float array -> float array -> float -> float option
(** Piecewise-linear interpolation over an x-sorted grid; [None]
    outside the range or across non-finite values. *)

val render :
  ?width:int -> ?height:int -> ?y_floor:float -> ?y_ceiling:float -> Series.t -> string
(** [render series] is the plot as a string. [y_floor]/[y_ceiling] pin
    the y-range (e.g. 0..1 for routability; values outside are clamped
    onto the border). @raise Invalid_argument on an empty series or a
    canvas smaller than 16x4. *)

val print :
  ?width:int -> ?height:int -> ?y_floor:float -> ?y_ceiling:float -> Series.t -> unit
