(** Kademlia XOR routing under failures (section 3.3): greedy in the
    XOR metric, preferring the highest-order bit correction and falling
    back to lower-order corrections when contacts are dead.

    Progress measure: the XOR distance [v lxor dst], read as an
    integer. Clearing any set bit [i] — even while dirtying bits below
    [i] — strictly decreases it, so falling back to a lower-order
    correction still makes greedy progress and routing terminates
    without back-tracking (see {!Router} for the shared invariants). *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
