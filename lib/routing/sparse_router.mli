(** Routing over sparse overlays ({!Overlay.Sparse}).

    Identical forwarding rules to the fully-populated routers, with
    distances measured on identifiers and empty bucket slots skipped. *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Sparse.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
(** [src], [dst] and the hops reported to [on_hop] are node *indexes*.
    @raise Invalid_argument on a hypercube overlay. *)
