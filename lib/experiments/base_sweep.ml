type config = {
  bits : int;
  groups : int list;
  qs : float list;
  trials : int;
  pairs : int;
  seed : int;
}

(* A7: base-b digits at fixed N = 2^16: b = 2 (the paper's binary
   setting), b = 4 and b = 16 (Pastry's default). Higher bases shorten
   routes, which buys the tree geometry a lot of static resilience —
   at the cost of (b-1)·D routing entries. *)
let default_config =
  { bits = 16; groups = [ 1; 2; 4 ]; qs = Grid.fig6_q; trials = 3; pairs = 1_500; seed = 111 }

let simulate cfg ~mode ~group q =
  let style =
    match mode with
    | `Tree -> Overlay.Digit_table.Preserve_suffix
    | `Xor -> Overlay.Digit_table.Randomize_suffix
  in
  let rng = Prng.Splitmix.create ~seed:cfg.seed in
  let delivered = ref 0 in
  let attempted = ref 0 in
  for _ = 1 to cfg.trials do
    let trial_rng = Prng.Splitmix.split rng in
    let table = Overlay.Digit_table.build ~rng:trial_rng ~bits:cfg.bits ~group style in
    let alive =
      Overlay.Failure.sample ~rng:trial_rng ~q (Overlay.Digit_table.node_count table)
    in
    let pool = Overlay.Failure.survivors alive in
    if Array.length pool >= 2 then
      for _ = 1 to cfg.pairs do
        let src, dst = Stats.Sampler.ordered_pair trial_rng pool in
        incr attempted;
        if Routing.Outcome.is_delivered (Routing.Digit_router.route ~mode table ~alive ~src ~dst)
        then incr delivered
      done
  done;
  if !attempted = 0 then 0.0 else float_of_int !delivered /. float_of_int !attempted

let label ~group suffix = Printf.sprintf "b=%d(%s)" (Idspace.Digit.base ~group) suffix

let tree_series cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf "A7 (tree): base-b Plaxton routability, N=2^%d — analysis vs simulation"
         cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.concat_map
       (fun group ->
         [
           (label ~group "ana", fun q -> Rcm.Digits.tree_routability ~d:cfg.bits ~q ~group);
           (label ~group "sim", simulate cfg ~mode:`Tree ~group);
         ])
       cfg.groups)

let xor_series cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf "A7 (xor): base-b Kademlia routability, N=2^%d — analysis vs simulation"
         cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    (List.concat_map
       (fun group ->
         [
           (label ~group "ana", fun q -> Rcm.Digits.xor_routability ~d:cfg.bits ~q ~group);
           (label ~group "sim", simulate cfg ~mode:`Xor ~group);
         ])
       cfg.groups)

(* Shorter routes help: analytical routability is monotone in the digit
   width at every grid point (for the tree, where p = (1-q)^h). *)
let tree_monotone_in_base cfg =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  List.for_all
    (fun (small, large) ->
      List.for_all
        (fun q ->
          Rcm.Digits.tree_routability ~d:cfg.bits ~q ~group:large
          >= Rcm.Digits.tree_routability ~d:cfg.bits ~q ~group:small -. 1e-9)
        cfg.qs)
    (pairs cfg.groups)
