type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "at byte %d: expected %c, found %c" c.pos ch x
  | None -> fail "at byte %d: expected %c, found end of input" c.pos ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "at byte %d: expected %s" c.pos word

let parse_string c =
  expect c '"';
  let buffer = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buffer '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buffer '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buffer '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buffer '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char buffer '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char buffer '\r'; go ()
        | Some 'b' -> advance c; Buffer.add_char buffer '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buffer '\012'; go ()
        | Some 'u' ->
            (* Our writers only \u-escape ASCII control characters;
               anything outside that range is not ours to decode. *)
            if c.pos + 4 >= String.length c.src then fail "truncated \\u escape";
            let hex = String.sub c.src (c.pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 ->
                c.pos <- c.pos + 5;
                Buffer.add_char buffer (Char.chr code);
                go ()
            | Some _ | None -> fail "unsupported \\u escape \\u%s" hex)
        | Some ch -> fail "bad escape \\%c" ch
        | None -> fail "unterminated escape")
    | Some ch ->
        advance c;
        Buffer.add_char buffer ch;
        go ()
  in
  go ();
  Buffer.contents buffer

let parse_number c =
  let start = c.pos in
  let numeric = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch when numeric ch -> true | _ -> false) do
    advance c
  done;
  let text = String.sub c.src start (c.pos - start) in
  match float_of_string_opt text with
  | Some v -> v
  | None -> fail "at byte %d: bad number %S" start text

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '{' -> parse_obj c
  | Some '[' -> parse_arr c
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail "at byte %d: unexpected %c" c.pos ch
  | None -> fail "unexpected end of input"

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    advance c;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec go () =
      skip_ws c;
      let key = parse_string c in
      skip_ws c;
      expect c ':';
      let value = parse_value c in
      fields := (key, value) :: !fields;
      skip_ws c;
      match peek c with
      | Some ',' -> advance c; go ()
      | Some '}' -> advance c
      | _ -> fail "at byte %d: expected , or } in object" c.pos
    in
    go ();
    Obj (List.rev !fields)
  end

and parse_arr c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    advance c;
    Arr []
  end
  else begin
    let items = ref [] in
    let rec go () =
      let value = parse_value c in
      items := value :: !items;
      skip_ws c;
      match peek c with
      | Some ',' -> advance c; go ()
      | Some ']' -> advance c
      | _ -> fail "at byte %d: expected , or ] in array" c.pos
    in
    go ();
    Arr (List.rev !items)
  end

let parse src =
  let c = { src; pos = 0 } in
  let value = parse_value c in
  skip_ws c;
  if c.pos <> String.length src then fail "trailing garbage at byte %d" c.pos;
  value

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_num = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_finite v && Float.rem v 1.0 = 0.0 -> Some (int_of_float v)
  | _ -> None

let to_list = function Arr l -> Some l | _ -> None

let to_obj = function Obj fields -> Some fields | _ -> None

let add_escaped buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | '\r' -> Buffer.add_string buffer "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let rec add_value buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (string_of_bool b)
  | Num v ->
      Buffer.add_string buffer
        (if not (Float.is_finite v) then "null"
         else if Float.rem v 1.0 = 0.0 && Float.abs v < 1e15 then
           string_of_int (int_of_float v)
         else Printf.sprintf "%.9g" v)
  | Str s -> add_escaped buffer s
  | Arr items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buffer ", ";
          add_value buffer v)
        items;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buffer ", ";
          add_escaped buffer k;
          Buffer.add_string buffer ": ";
          add_value buffer v)
        fields;
      Buffer.add_char buffer '}'

let to_string v =
  let buffer = Buffer.create 64 in
  add_value buffer v;
  Buffer.contents buffer

