(** Connected-component analysis of (possibly failed) overlays.

    Used by the percolation experiment (A1) to contrast routability with
    raw connectivity: a pair can be connected yet unroutable, so
    [pair_connectivity] upper-bounds any geometry's routability. *)

type report = {
  alive_nodes : int;
  component_count : int;  (** components among alive nodes *)
  largest : int;  (** size of the largest component *)
  giant_fraction : float;  (** largest / alive *)
  pair_connectivity : float;
      (** fraction of ordered alive pairs in the same component *)
}

val analyze : ?alive:bool array -> Digraph.t -> report

val pp : Format.formatter -> report -> unit
