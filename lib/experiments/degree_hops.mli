(** E13: the degree / hop-count tradeoff across geometries.

    For each geometry, measures the per-node routing-table size and
    the mean delivered hop count (chain-predicted via
    {!Latency.predicted_hops} and Monte-Carlo simulated), plus the
    routability point estimate, at one failure probability. Rows are
    sorted by degree, so the resulting series reads as a tradeoff
    curve. The canonical use is the ReCord base sweep —
    [record:h=2,4,16] trades table size for fewer, fatter phases —
    but the module is geometry-agnostic. *)

type config = { bits : int; q : float; trials : int; pairs : int; seed : int }

val default_config : config
(** [bits = 12], [q = 0.1], 3 trials of 1500 pairs. *)

val quick_config : config
(** Smaller smoke variant ([bits = 8] — divisible by digit widths up
    to 4, so [record:h=16] still builds — 500 pairs). *)

type row = {
  geometry : Rcm.Geometry.t;
  degree : int;  (** routing-table entries per node *)
  chain_hops : float;  (** chain-predicted mean delivered hops *)
  sim_hops : float;  (** simulated mean delivered hops *)
  routability : float;  (** simulated delivery fraction (nan without data) *)
}

val rows : config -> Rcm.Geometry.t list -> row list
(** One measured row per geometry, sorted by ascending degree. *)

val run : config -> Rcm.Geometry.t list -> Series.t
(** The rows as a plottable series: x = degree, columns
    [hops(chain)], [hops(sim)], [routability]. *)
