(** Experiment A4 — Chord finger-placement ablation.

    Compares deterministic fingers (classic Chord, distance exactly 2^i)
    with the randomised placement the analysis section describes
    (uniform in [2^i, 2^(i+1))). Deterministic fingers satisfy the
    chain's m-usable-fingers assumption, making the analysis a true
    lower bound; randomised fingers overshoot near the destination. *)

type config = { bits : int; qs : float list; trials : int; pairs : int; seed : int }

val default_config : config

val run : config -> Series.t
(** Columns: analysis, det-fingers simulation, rand-fingers
    simulation. *)

val bound_violations : ?slack:float -> Series.t -> (float * float * float) list
(** Grid points where deterministic-finger routability fell below the
    analytical lower bound by more than [slack]; empty on a correct
    build. *)
