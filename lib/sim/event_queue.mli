(** Deterministic binary-heap event queue for discrete-event
    simulation. Events with equal timestamps pop in insertion order. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on a nan timestamp. *)

val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option

val size : 'a t -> int
val is_empty : 'a t -> bool
