type value = String of string | Int of int | Float of float | Bool of bool

(* The sink is guarded by [lock]; [active] mirrors "sink <> None" so the
   disabled fast path is one atomic load, with no lock taken. *)
let lock = Mutex.create ()

let sink : out_channel option ref = ref None

let active = Atomic.make false

let enabled () = Atomic.get active

let set_sink oc =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      (match !sink with
      | Some old -> ( try close_out old with Sys_error _ -> ())
      | None -> ());
      sink := oc;
      Atomic.set active (oc <> None))

let close () = set_sink None

let with_file path f =
  set_sink (Some (open_out path));
  Fun.protect ~finally:close f

let buffer_value buffer = function
  | String s ->
      Buffer.add_char buffer '"';
      String.iter
        (function
          | '"' -> Buffer.add_string buffer "\\\""
          | '\\' -> Buffer.add_string buffer "\\\\"
          | '\n' -> Buffer.add_string buffer "\\n"
          | c -> Buffer.add_char buffer c)
        s;
      Buffer.add_char buffer '"'
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f ->
      Buffer.add_string buffer (if Float.is_finite f then Printf.sprintf "%.9g" f else "null")
  | Bool b -> Buffer.add_string buffer (string_of_bool b)

let emit ~kind ~name ?dur_s attrs =
  let buffer = Buffer.create 160 in
  Buffer.add_string buffer
    (Printf.sprintf "{\"ts\": %.6f, \"kind\": %S, \"name\": %S, \"domain\": %d"
       (Unix.gettimeofday ()) kind name
       (Domain.self () :> int));
  (match dur_s with
  | Some d -> Buffer.add_string buffer (Printf.sprintf ", \"dur_s\": %.9f" d)
  | None -> ());
  if attrs <> [] then begin
    Buffer.add_string buffer ", \"attrs\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buffer ", ";
        Buffer.add_string buffer (Printf.sprintf "%S: " k);
        buffer_value buffer v)
      attrs;
    Buffer.add_char buffer '}'
  end;
  Buffer.add_string buffer "}\n";
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match !sink with
      | Some oc -> Buffer.output_buffer oc buffer
      | None -> () (* sink removed since the atomic check: drop the record *))

let span name ?(attrs = []) f =
  if not (Atomic.get active) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> emit ~kind:"span" ~name ~dur_s:(Unix.gettimeofday () -. t0) attrs)
      f
  end

let event name ?(attrs = []) () =
  if Atomic.get active then emit ~kind:"event" ~name attrs
