(** RCM over base-b identifier digits — the generalisation the paper
    mentions in section 3 ("any other base besides 2 can be used").

    A d-bit space read as D = d/group digits of width [group]
    (base b = 2^group) keeps the population (sum_h n(h) = 2^d - 1) and
    the per-phase failure structure, but shortens routes to at most D
    phases at the cost of (b-1)·D routing-table entries per node —
    Pastry's base parameter, analysable with the same engine. At
    [group = 1] every function reduces to the binary modules. *)

val digit_count : d:int -> group:int -> int
(** D = d / group. @raise Invalid_argument unless [group] divides [d]. *)

val base : group:int -> int
(** b = 2^group. *)

val log_population : group:int -> d:int -> h:int -> float
(** log n(h) = log [C(D,h) (b-1)^h]. *)

val tree_spec : group:int -> Spec.t
(** Base-b Plaxton: Q(m) = q (the one digit-correcting contact must be
    alive). *)

val xor_spec : group:int -> Spec.t
(** Base-b Kademlia: Q(m) as in Eq. 6 (one useful contact per differing
    digit, base-independent). *)

val tree_routability : d:int -> q:float -> group:int -> float
val xor_routability : d:int -> q:float -> group:int -> float

val table_entries : d:int -> group:int -> int
(** Routing-table size (b-1)·D bought by the base. *)
