(** Churn behaviour of custom geometry families.

    The churn engines ({!Churn}, {!Session_churn}) need four
    per-geometry facts beyond routing: which routing-table slots are
    {e positional} (a single deterministic candidate — ring fingers,
    Symphony near links — that can only heal when its target returns),
    how a {e re-drawable} slot draws a fresh candidate, whether
    periodic maintenance repairs dead entries in place, and which
    closed form maps measured staleness back to predicted
    routability. Built-in geometries hard-code these; a plugin family
    registers them here once and both engines pick them up. *)

type t = {
  near_slots : int;
      (** Slots [0 .. near_slots - 1] of every row are positional:
          repair and rejoin keep their current target. Slots at or
          above are re-drawable. The staleness split
          ([stale_near] / [stale_shortcut]) uses the same boundary. *)
  redraw : Prng.Splitmix.t -> v:int -> slot:int -> int;
      (** One raw candidate draw for re-drawable slot [slot] of node
          [v]'s row — no liveness logic here; the engines wrap it in
          their shared alive-preferring bounded rejection (at most 8
          retries). Must consume the same draws the table builder's
          entry function would for that slot, so a fully-repaired row
          is distributed like a fresh one. *)
  maintained : bool;
      (** When true, nodes get periodic maintenance ticks
          ({!Session_churn}) that redraw dead re-drawable entries in
          place, like Symphony shortcut repair; when false the family
          only heals on rejoin. *)
  prediction :
    bits:int -> stale:float -> stale_near:float -> stale_shortcut:float -> float;
      (** The churn-to-static bridge: predicted routability at the
          measured stale fractions (overall, and split by slot
          class). Typically evaluates the family's RCM spec at
          [q = stale]. *)
}

type resolver = (string * int) list -> bits:int -> t
(** Builds the profile from the geometry's normalized parameter list
    and the id-space width. *)

val register : family:string -> resolver -> unit
(** Registers a family's churn profile resolver. Call at module-init
    time from the plugin library.
    @raise Invalid_argument if the family is already registered. *)

val registered : family:string -> bool
(** Whether a family has a churn profile — what
    [Churn.config] / [Session_churn.config] check before accepting a
    custom geometry. *)

val resolve_exn : string -> Rcm.Geometry.t -> bits:int -> t
(** [resolve_exn context geometry ~bits] resolves a custom geometry's
    profile, raising [Invalid_argument] (prefixed with [context]) for
    built-ins or unregistered families. *)

val redraw_alive :
  t -> Prng.Splitmix.t -> alive:Overlay.Failure.t -> v:int -> slot:int -> int
(** One alive-preferring redraw of a re-drawable slot: up to 8
    rejection draws of {!field-redraw} preferring live candidates, then
    accept the last — the engines' shared repair rule. *)
