type t = { bits : int; size : int }

let max_bits = 30

let create ~bits =
  if bits < 1 || bits > max_bits then
    invalid_arg
      (Printf.sprintf "Space.create: bits must be in 1..%d (got %d)" max_bits bits)
  else { bits; size = 1 lsl bits }

let bits t = t.bits

let size t = t.size

let mask t = t.size - 1

let contains t id = id >= 0 && id < t.size

let check t id =
  if not (contains t id) then
    invalid_arg (Printf.sprintf "Space: id %d outside 2^%d space" id t.bits)

let random_id t rng = Prng.Splitmix.int rng t.size

let fold_ids t ~init ~f =
  let acc = ref init in
  for id = 0 to t.size - 1 do
    acc := f !acc id
  done;
  !acc

let pp ppf t = Format.fprintf ppf "2^%d identifier space (%d ids)" t.bits t.size
