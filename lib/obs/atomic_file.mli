(** Atomic file writes: write-to-temp then [Sys.rename].

    Every artefact this repository leaves on disk (figure CSVs, the
    gnuplot driver, [BENCH_<date>.json], JSONL traces and checkpoints)
    must either exist in full or not at all: an interrupted or crashed
    run may abandon work, but it must never leave a truncated file that
    a later tool half-parses. POSIX [rename] within one directory is
    atomic, so readers only ever observe the previous complete file or
    the new complete file. *)

val temp_path : string -> string
(** [temp_path path] is the sibling temporary name ([path ^ ".tmp"])
    that {!write} stages into before renaming. Exposed so cleanup code
    and tests can name it. *)

val write : string -> (out_channel -> unit) -> unit
(** [write path emit] opens [temp_path path], runs [emit] on the
    channel, closes it and renames it onto [path]. If [emit] (or the
    close) raises, the temporary file is removed and [path] is left
    untouched — the failure is re-raised. *)
