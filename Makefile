.PHONY: all build test check bench bench-smoke chaos-smoke trace-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full gate: everything compiles, the whole suite passes, and the
# parallel engine survives a real 2-domain figure regeneration.
check:
	dune build @all
	dune runtest
	DHT_RCM_JOBS=2 dune exec bin/dhtlab.exe -- figure f6a --quick --jobs 2

bench:
	dune exec bench/main.exe

# CI-sized bench: runs only the pool sweep (with metrics enabled),
# writes BENCH_<date>.json, and asserts it matches the schema the
# perf-tracking tooling expects.
bench-smoke:
	dune exec bench/main.exe -- --smoke
	dune exec bench/validate.exe

# Fault-tolerance smoke: fault-injected --smoke sweep, SIGINT mid-run,
# --resume, and a deterministic truncated-checkpoint resume — each
# diffed byte-for-byte against an uninterrupted baseline.
chaos-smoke: build
	sh scripts/chaos_smoke.sh

# Observability smoke: traced --smoke sweep (stdout byte-identical to
# an untraced one), trace report aggregates, Chrome export, and
# validated manifest/metrics/Prometheus sinks.
trace-smoke: build
	sh scripts/trace_smoke.sh

clean:
	dune clean
