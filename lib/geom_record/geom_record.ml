(* ReCord (Zeng & Hsu, cs/0410074): h-ary recursive rings generalising
   randomized Chord. In RCM terms the geometry is digit-granular
   Kademlia: identifiers are read as D = d/log2(h) base-h digits, node
   v keeps one randomized contact per (digit level, alternative digit
   value) — degree (h-1)·D — and routing greedily corrects the most
   significant differing digit, falling back to lower levels exactly
   like the XOR router falls back over set bits. At h = 2 every piece
   below degenerates draw-for-draw to the built-in xor geometry
   (pinned by test_geom), which is what makes the plugin a worked
   conformance example: raising h trades table size for fewer, fatter
   phases along the Pastry design axis that Rcm.Digits quantifies.

   This module is the registration unit: linked with -linkall, its
   init hooks the family into every layer's registry — parsing
   (Rcm.Geometry), closed forms and chains (Rcm.Model), table and
   sparse construction (Overlay), scalar/batch/sparse routing
   (Routing), churn behaviour (Sim.Churn_profile), replica placement
   (Storage.Placement) and the descriptor registry (Geom). Nothing
   outside this directory pattern-matches the family. *)

let family = "record"

let log2_exact h =
  let rec go g x = if x <= 1 then g else go (g + 1) (x lsr 1) in
  go 0 h

let group_of params =
  match List.assoc_opt "h" params with
  | Some h -> log2_exact h
  | None -> invalid_arg "record: missing parameter h"

let () =
  Rcm.Geometry.register_family
    {
      Rcm.Geometry.family_name = family;
      aliases = [ "rechord" ];
      family_system = "ReCord";
      summary = "ReCord: base-h recursive-ring digit routing (randomized Chord family)";
      defaults = [ ("h", 2) ];
      validate =
        (fun params ->
          match List.assoc_opt "h" params with
          | None -> Error "missing parameter h"
          | Some h ->
              if h < 2 || h > 1024 then Error "h must be in 2..1024"
              else if h land (h - 1) <> 0 then Error "h must be a power of two"
              else Ok ());
    }

let geometry ?(h = 2) () =
  match Rcm.Geometry.custom ~family [ ("h", h) ] with
  | Ok g -> g
  | Error e -> invalid_arg ("Geom_record.geometry: " ^ e)

(* --- closed forms ---------------------------------------------------------

   The RCM spec is exactly Rcm.Digits.xor_spec: D = d/group phases,
   n(h) = C(D,h)(h_base-1)^h, and at m unresolved digits there are m
   useful contacts, so Q(m) is the XOR expression — base-independent.
   The routing chain per digit distance is likewise the XOR chain. *)

let () =
  Rcm.Model.register_custom ~family
    {
      Rcm.Model.spec = (fun params -> Rcm.Digits.xor_spec ~group:(group_of params));
      kind = `Lower_bound;
      chain = Some (fun _params ~d:_ ~q ~h -> Markov.Routing_chains.xor ~h ~q);
      classification =
        ( `Scalable,
          "Q(m) is the XOR expression (m useful contacts at m unresolved digits), \
           independent of the base, so sum Q(m) converges for every h" );
    }

(* --- table construction ---------------------------------------------------

   Slot layout: slot = (level-1)·(h-1) + rank-1, level 1..D most
   significant digit first, rank 1..h-1 the offset added (mod h) to
   the node's own digit. The entry sets that digit and randomizes
   every lower-order bit with a single Prng draw — the digit
   generalisation of xor_entry, consuming one draw per entry in
   (v, slot) order on both backends. *)

let checked_group ~bits params =
  let group = group_of params in
  if bits mod group <> 0 then
    invalid_arg
      (Printf.sprintf "record: h=%d needs digit width %d to divide bits=%d"
         (1 lsl group) group bits);
  group

let () =
  Overlay.Table.register_custom_builder ~family (fun ~space ~rng params ->
      let bits = Idspace.Space.bits space in
      let group = checked_group ~bits params in
      let b = 1 lsl group in
      let digits = bits / group in
      let size = Idspace.Space.size space in
      let entry v i =
        let level = (i / (b - 1)) + 1 in
        let rank = (i mod (b - 1)) + 1 in
        let own = Idspace.Digit.get ~bits ~group v level in
        let stepped = Idspace.Digit.set ~bits ~group v level ((own + rank) mod b) in
        let suffix = Prng.Splitmix.int rng size in
        Idspace.Id.with_suffix ~bits stepped ~prefix_len:(level * group) ~suffix
      in
      (digits * (b - 1), entry))

(* --- scalar routing -------------------------------------------------------

   Greedy digit correction with XOR-style fallback: prefer the contact
   correcting the most significant differing digit; when it is dead,
   fall back level by level. Fixing the differing digit at level L
   zeroes an indicator term of weight h^(D-L) while the randomized
   suffix can only contribute terms strictly below it, so every hop
   strictly decreases the digit-indicator distance — the same progress
   argument as the XOR router, to which this specialises at h = 2. *)

let params_of table_geometry =
  match table_geometry with
  | Rcm.Geometry.Custom { params; _ } -> params
  | _ -> invalid_arg "Geom_record: table geometry is not a record instance"

let route ?(on_hop = ignore) table ~rng:_ ~alive ~src ~dst =
  let bits = Overlay.Table.bits table in
  let group = group_of (params_of (Overlay.Table.geometry table)) in
  let b = 1 lsl group in
  let digits = bits / group in
  let rec step cur hops =
    if cur = dst then Routing.Outcome.Delivered { hops }
    else begin
      let leading =
        match Idspace.Digit.highest_differing ~bits ~group cur dst with
        | Some level -> level
        | None -> assert false
      in
      let rec try_level level =
        if level > digits then None
        else begin
          let own = Idspace.Digit.get ~bits ~group cur level in
          let want = Idspace.Digit.get ~bits ~group dst level in
          if own = want then try_level (level + 1)
          else begin
            let rank = (want - own + b) mod b in
            let candidate =
              Overlay.Table.neighbor table cur (((level - 1) * (b - 1)) + rank - 1)
            in
            if Overlay.Failure.get alive candidate then Some candidate
            else try_level (level + 1)
          end
        end
      in
      match try_level leading with
      | None -> Routing.Outcome.Dropped { hops; stuck_at = cur }
      | Some next ->
          on_hop next;
          step next (hops + 1)
    end
  in
  step src 0

let () = Routing.Router.register_custom ~family route

(* --- batch lane -----------------------------------------------------------

   The router draws no randomness while forwarding, so the family can
   opt into a Block lane: the same walk compiled against the CSR
   arrays directly (Int32 target loads, packed-bitset liveness, slice
   bumps at the scalar counting points). Bit-identity with the scalar
   lane is pinned by the registry-driven batch differential test. *)

let block ~group : Routing.Route_batch.block_router =
 fun targets words offsets srcs dsts n hops_buf stuck_buf bits _degree trav term ->
  let b = 1 lsl group in
  let digits = bits / group in
  let is_alive v =
    Bigarray.Array1.unsafe_get words (v lsr 5) lsr (v land 31) land 1 <> 0
  in
  let neighbor cur slot =
    Int32.to_int
      (Bigarray.Array1.unsafe_get targets (Bigarray.Array1.unsafe_get offsets cur + slot))
  in
  let bump buf v =
    if Bigarray.Array1.dim buf > 0 then
      Bigarray.Array1.unsafe_set buf v (Bigarray.Array1.unsafe_get buf v + 1)
  in
  for k = 0 to n - 1 do
    let dst = Array.unsafe_get dsts k in
    let rec step cur hops =
      if cur = dst then begin
        bump term dst;
        Bigarray.Array1.unsafe_set hops_buf k hops;
        Bigarray.Array1.unsafe_set stuck_buf k (-1)
      end
      else begin
        let leading =
          match Idspace.Digit.highest_differing ~bits ~group cur dst with
          | Some level -> level
          | None -> assert false
        in
        let rec try_level level =
          if level > digits then None
          else begin
            let own = Idspace.Digit.get ~bits ~group cur level in
            let want = Idspace.Digit.get ~bits ~group dst level in
            if own = want then try_level (level + 1)
            else begin
              let rank = (want - own + b) mod b in
              let candidate = neighbor cur (((level - 1) * (b - 1)) + rank - 1) in
              if is_alive candidate then Some candidate else try_level (level + 1)
            end
          end
        in
        match try_level leading with
        | None ->
            bump term cur;
            Bigarray.Array1.unsafe_set hops_buf k hops;
            Bigarray.Array1.unsafe_set stuck_buf k cur
        | Some next ->
            bump trav next;
            step next (hops + 1)
      end
    in
    step (Array.unsafe_get srcs k) 0
  done

let () =
  Routing.Route_batch.register_custom_lane ~family (fun params ->
      Routing.Route_batch.Block (block ~group:(group_of params)))

(* --- sparse overlay -------------------------------------------------------

   Digit generalisation of the sparse prefix buckets: the (level,
   rank) contact of node v is a uniformly random occupied id matching
   v's digits above [level] and holding digit own+rank there, or
   [missing] when that digit subtree is empty. The sparse router is
   the same greedy walk on identifiers with missing slots skipped. *)

let () =
  Overlay.Sparse.register_custom_builder ~family (fun t rng params ->
      let bits = Overlay.Sparse.bits t in
      let group = checked_group ~bits params in
      let b = 1 lsl group in
      let digits = bits / group in
      Array.init (Overlay.Sparse.node_count t) (fun v ->
          let id_v = Overlay.Sparse.id_of t v in
          Array.init (digits * (b - 1)) (fun i ->
              let level = (i / (b - 1)) + 1 in
              let rank = (i mod (b - 1)) + 1 in
              let own = Idspace.Digit.get ~bits ~group id_v level in
              let pattern =
                Idspace.Digit.set ~bits ~group id_v level ((own + rank) mod b)
              in
              let lo, hi =
                Overlay.Sparse.prefix_range t ~pattern ~prefix_len:(level * group)
              in
              if hi <= lo then Overlay.Sparse.missing
              else lo + Prng.Splitmix.int rng (hi - lo))))

let sparse_route ?(on_hop = ignore) overlay ~alive ~src ~dst =
  let bits = Overlay.Sparse.bits overlay in
  let group = group_of (params_of (Overlay.Sparse.geometry overlay)) in
  let b = 1 lsl group in
  let digits = bits / group in
  let id_dst = Overlay.Sparse.id_of overlay dst in
  let rec step cur hops =
    if cur = dst then Routing.Outcome.Delivered { hops }
    else begin
      let id_cur = Overlay.Sparse.id_of overlay cur in
      let contacts = Overlay.Sparse.unsafe_contacts overlay cur in
      let leading =
        match Idspace.Digit.highest_differing ~bits ~group id_cur id_dst with
        | Some level -> level
        | None -> assert false (* ids are distinct *)
      in
      let rec try_level level =
        if level > digits then None
        else begin
          let own = Idspace.Digit.get ~bits ~group id_cur level in
          let want = Idspace.Digit.get ~bits ~group id_dst level in
          if own = want then try_level (level + 1)
          else begin
            let candidate = contacts.(((level - 1) * (b - 1)) + ((want - own + b) mod b) - 1) in
            if candidate <> Overlay.Sparse.missing && Overlay.Failure.get alive candidate
            then Some candidate
            else try_level (level + 1)
          end
        end
      in
      match try_level leading with
      | None -> Routing.Outcome.Dropped { hops; stuck_at = cur }
      | Some next ->
          on_hop next;
          step next (hops + 1)
    end
  in
  step src 0

let () = Routing.Sparse_router.register_custom ~family sparse_route

(* Replica placement follows the digit/XOR proximity structure, like
   Kademlia (at h = 2 the two coincide exactly). *)
let () = Storage.Placement.register_custom_style ~family `Closest

(* --- churn ----------------------------------------------------------------

   Every slot is re-drawable (no positional near links): a repair
   redraws the entry with exactly the table builder's draw (one
   Prng.int per attempt), so a fully-repaired row is distributed like
   a fresh one. Maintenance redraws dead entries in place, like
   Symphony shortcut repair. The churn-to-static bridge evaluates the
   family's own spec at q = measured staleness. *)

let () =
  Sim.Churn_profile.register ~family (fun params ~bits ->
      let group = checked_group ~bits params in
      let b = 1 lsl group in
      let size = 1 lsl bits in
      {
        Sim.Churn_profile.near_slots = 0;
        redraw =
          (fun rng ~v ~slot ->
            let level = (slot / (b - 1)) + 1 in
            let rank = (slot mod (b - 1)) + 1 in
            let own = Idspace.Digit.get ~bits ~group v level in
            let stepped = Idspace.Digit.set ~bits ~group v level ((own + rank) mod b) in
            let suffix = Prng.Splitmix.int rng size in
            Idspace.Id.with_suffix ~bits stepped ~prefix_len:(level * group) ~suffix);
        maintained = true;
        prediction =
          (fun ~bits ~stale ~stale_near:_ ~stale_shortcut:_ ->
            Rcm.Engine.routability (Rcm.Digits.xor_spec ~group) ~d:bits ~q:stale);
      })

(* --- descriptor -----------------------------------------------------------

   Last: the descriptor rides into the CLI listing, the README/docs
   drift check and every registry-driven test matrix. *)

let () =
  Geom.register
    {
      Geom.default = geometry ();
      builtin = false;
      example = "record:h=4";
      degree = "(h-1) d / log2 h";
      hops = "O(log_h N)";
      analysis = true;
      chain = true;
      batch_block = true;
      sparse = true;
      churn = true;
      session_churn = true;
    }
