#!/usr/bin/env sh
# Churn smoke: prove the session-churn sweep end to end.
#
#   1. Baseline --smoke sweep; the table must carry both the measured
#      routability and the static prediction columns.
#   2. --jobs determinism: the same sweep on 1 and 2 domains must be
#      byte-identical (per-point seeds derive by index, not by domain).
#   3. CSV and JSON modes: header shape, one record per grid point.
#   4. Checkpointed run with manifest/metrics telemetry, then --resume:
#      stdout byte-identical to the baseline, telemetry schema-valid.
#   5. Deterministic mid-state resume: truncate the checkpoint to its
#      first half and resume — must reproduce the baseline and rewrite
#      the complete checkpoint.
#   6. Heavier sweep interrupted with SIGINT mid-run: must exit 130 (or
#      finish 0 if the machine outran the kill), leave a loadable
#      checkpoint and no .tmp turd, and resume byte-identically.
#
# Usage: scripts/churn_smoke.sh [path-to-dhtlab] [path-to-validate]
# CHURN_WORK, when set, names the work directory to use (and keep):
# CI points it somewhere uploadable so a failure leaves the artefacts
# behind for inspection. Exits non-zero on the first violated invariant.

set -eu

DHTLAB=${1:-_build/default/bin/dhtlab.exe}
VALIDATE=${2:-_build/default/bench/validate.exe}
if [ -n "${CHURN_WORK:-}" ]; then
    WORK=$CHURN_WORK
    mkdir -p "$WORK"
else
    WORK=$(mktemp -d "${TMPDIR:-/tmp}/churn_smoke.XXXXXX")
    trap 'rm -rf "$WORK"' EXIT INT TERM
fi

ARGS="churn --smoke --seed 7"

fail() {
    echo "churn-smoke: FAIL: $1" >&2
    exit 1
}

echo "churn-smoke: 1/6 baseline --smoke sweep"
$DHTLAB $ARGS --jobs 2 > "$WORK/baseline.txt"
grep -q "routability" "$WORK/baseline.txt" || fail "no routability column in the table"
grep -q "prediction" "$WORK/baseline.txt" || fail "no static-prediction column in the table"

echo "churn-smoke: 2/6 --jobs determinism (1 vs 2 domains)"
$DHTLAB $ARGS --jobs 1 > "$WORK/jobs1.txt"
diff "$WORK/baseline.txt" "$WORK/jobs1.txt" \
    || fail "sweep output differs between --jobs 1 and --jobs 2"

echo "churn-smoke: 3/6 csv and json modes"
$DHTLAB $ARGS --jobs 2 --csv > "$WORK/points.csv"
head -n 1 "$WORK/points.csv" | grep -q "^geometry,bits,session_mean,churn_rate" \
    || fail "unexpected CSV header"
# --smoke sweeps 2 session means over all five geometries: 10 points.
[ "$(wc -l < "$WORK/points.csv")" = 11 ] || fail "expected 10 CSV rows plus the header"
$DHTLAB $ARGS --jobs 2 --json > "$WORK/points.json"
[ "$(wc -l < "$WORK/points.json")" = 10 ] || fail "expected 10 JSON records"
grep -q '"prediction"' "$WORK/points.json" || fail "JSON records missing the prediction field"

echo "churn-smoke: 4/6 checkpointed run + resume, diffed against the baseline"
$DHTLAB $ARGS --jobs 2 --checkpoint "$WORK/ck.jsonl" --checkpoint-every 2 \
    --manifest "$WORK/run.manifest.json" --metrics-out "$WORK/run.metrics.json" \
    > "$WORK/checkpointed.txt"
diff "$WORK/baseline.txt" "$WORK/checkpointed.txt" \
    || fail "checkpointed stdout differs from the baseline"
[ -e "$WORK/ck.jsonl" ] || fail "no checkpoint file written"
[ -e "$WORK/ck.jsonl.tmp" ] && fail "atomic write left ck.jsonl.tmp behind"
grep -q '"kind": "churn"' "$WORK/ck.jsonl" || fail "checkpoint carries no churn records"
$VALIDATE --manifest "$WORK/run.manifest.json" || fail "manifest failed validation"
$VALIDATE --metrics "$WORK/run.metrics.json" || fail "metrics snapshot failed validation"
$DHTLAB $ARGS --jobs 2 --checkpoint "$WORK/ck.jsonl" --resume > "$WORK/resumed.txt"
diff "$WORK/baseline.txt" "$WORK/resumed.txt" \
    || fail "resumed stdout differs from the baseline"

echo "churn-smoke: 5/6 deterministic mid-state resume from a truncated checkpoint"
TOTAL=$(wc -l < "$WORK/ck.jsonl")
head -n $((TOTAL / 2)) "$WORK/ck.jsonl" > "$WORK/ck_half.jsonl"
$DHTLAB $ARGS --jobs 2 --checkpoint "$WORK/ck_half.jsonl" --resume > "$WORK/resumed_half.txt"
diff "$WORK/baseline.txt" "$WORK/resumed_half.txt" \
    || fail "half-checkpoint resume differs from the baseline"
diff "$WORK/ck.jsonl" "$WORK/ck_half.jsonl" \
    || fail "resumed checkpoint file differs from the complete one"

echo "churn-smoke: 6/6 heavier sweep interrupted by SIGINT, then resumed"
HEAVY="churn -d 12 --sessions 2,4,8,16 --pairs 4000 --seed 7 --jobs 2"
$DHTLAB $HEAVY > "$WORK/heavy_baseline.txt"
$DHTLAB $HEAVY --checkpoint "$WORK/heavy.jsonl" --checkpoint-every 2 \
    > "$WORK/heavy_int.txt" 2> "$WORK/heavy_int.err" &
PID=$!
sleep 1
kill -INT "$PID" 2>/dev/null || true
STATUS=0
wait "$PID" || STATUS=$?
case "$STATUS" in
    130)
        echo "churn-smoke:     interrupted (exit 130), checkpoint flushed"
        grep -q "interrupted" "$WORK/heavy_int.err" \
            || fail "exit 130 without the interrupted message on stderr"
        ;;
    0)   echo "churn-smoke:     run outran the signal (exit 0); resume still covered below" ;;
    *)   fail "interrupted run exited $STATUS (expected 130 or 0)" ;;
esac
[ -e "$WORK/heavy.jsonl" ] || fail "no checkpoint file after interruption"
[ -e "$WORK/heavy.jsonl.tmp" ] && fail "atomic write left heavy.jsonl.tmp behind"
$DHTLAB $HEAVY --checkpoint "$WORK/heavy.jsonl" --resume > "$WORK/heavy_resumed.txt"
diff "$WORK/heavy_baseline.txt" "$WORK/heavy_resumed.txt" \
    || fail "heavy resumed stdout differs from the uninterrupted baseline"

echo "churn-smoke: OK (determinism, checkpoint/resume and SIGINT recovery all hold)"
