(** Keyed cache of built overlay tables for Monte-Carlo sweeps.

    Overlay construction depends only on (geometry, bits, build seed) —
    never on the failure probability — yet a q-sweep re-runs it for
    every (trial, q) grid point. This cache builds each overlay once
    per sweep and hands the same immutable table back on every later
    hit, so a sweep pays [trials] builds instead of [|qs| × trials].

    Each entry also records the PRNG state left behind by the build
    ({!Prng.Splitmix.state}), so a cache hit can resume the trial's
    random stream exactly where a fresh build would have left it:
    failure sampling and routing draw the same values whether the
    build ran or was skipped, keeping results bit-identical to the
    uncached path.

    All operations are thread-safe; the returned tables are immutable
    and may be routed over concurrently from several domains.

    When {!Obs.Metrics} is enabled the cache feeds the global counters
    [cache/hits], [cache/misses], [cache/evictions] and
    [cache/double_builds] (summed over every cache instance), and each
    build is traced as an [overlay/build] span. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh, empty cache holding at most [capacity] tables (default
    128). Inserting past capacity evicts the oldest-inserted entry
    only — never the whole cache — so entries shared by in-flight
    sweeps survive unrelated insertions; evicted tables remain valid
    for holders (they are immutable), and a later miss on the same key
    deterministically rebuilds the identical table.
    @raise Invalid_argument if [capacity < 1]. *)

val get :
  t -> ?backend:Table.backend -> bits:int -> build_seed:int64 -> Rcm.Geometry.t ->
  Table.t * int64
(** [get cache ~bits ~build_seed geometry] is [(table, resume)] where
    [table] is the overlay that [Table.build] produces from a
    generator in state [build_seed], and [resume] is the generator's
    state after that build. Repeated calls with the same key return
    the physically same table. [backend] (default [Classic]) selects
    the physical representation and is part of the cache key; [resume]
    is the same for both backends (builds consume identical draws), so
    downstream trial streams do not depend on the backend. *)

val locked : t -> (unit -> 'a) -> 'a
(** [locked t f] runs [f] while holding the cache's lock, releasing it
    when [f] returns {e or raises}. Used by the accessors below (and
    their exception-safety regression test); [f] must not re-enter the
    cache — the lock is not recursive. *)

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Entries dropped to make room at capacity. *)

val double_builds : t -> int
(** Builds whose result was discarded because a concurrent miss on the
    same key inserted first (wasted but harmless work — both builds
    are deterministic in the key). *)

val length : t -> int
(** Number of cached tables. *)

val clear : t -> unit
(** Drops every entry (hit/miss/eviction counters are kept). *)
