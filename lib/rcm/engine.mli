(** The generic reachable component method (section 4.1).

    Given a geometry {!Spec.t} — its distance distribution n(h) and
    per-phase failure probability Q(m) — this module carries out RCM
    steps 3-5: p(h,q) as a product of phase successes (Eq. 5), the
    expected reachable-component size E[S] (step 4) and the routability
    r = E[S] / ((1-q)·2^d - 1) (Eq. 1). All sums run in the log domain,
    so the d = 100 asymptotic evaluation of Fig. 7(a) is exact to float
    precision. *)

val log_success_probability : Spec.t -> d:int -> q:float -> h:int -> float
(** log p(h,q) = sum_{m=1..h} log(1 - Q(m)).
    @raise Invalid_argument if [h] is outside 0..max phase or the spec
    produces an invalid probability. *)

val success_probability : Spec.t -> d:int -> q:float -> h:int -> float
(** p(h,q): probability of successfully routing to a target h
    hops/phases away. *)

val log_expected_reachable : Spec.t -> d:int -> q:float -> Numerics.Logspace.t

val expected_reachable : Spec.t -> d:int -> q:float -> float
(** E[S] = sum_h n(h)·p(h,q): expected reachable-component size of a
    surviving root node. *)

val log_surviving_peers : d:int -> q:float -> Numerics.Logspace.t option
(** log((1-q)·2^d - 1), or [None] when at most one node survives on
    average. *)

val routability : Spec.t -> d:int -> q:float -> float
(** Eq. 1. In [0,1]; equals 1 at q = 0 and 0 when no pairs survive. *)

val failed_paths_percent : Spec.t -> d:int -> q:float -> float
(** 100·(1 - r): the y-axis of Figs. 6 and 7(a). *)

val population : Spec.t -> d:int -> h:int -> float
(** n(h). *)

val total_population : Spec.t -> d:int -> float
(** sum_h n(h); equals 2^d - 1 for all five geometries. *)
