(* Benchmark and figure-regeneration harness.

   Running this executable:
   1. regenerates the data series behind every figure of the paper
      (Fig. 6(a), 6(b), 7(a), 7(b)), the section-5 classification table
      and the A1-A4 ablations, printing each as an aligned table; then
   2. runs one Bechamel micro-benchmark per experiment kernel, so the
      cost of the analysis and of the simulator are tracked; then
   3. times the Fig. 6(a)-style simulation sweep sequentially and on
      the domain pool, printing the wall-clock speedup line that tracks
      the perf trajectory across PRs; then
   4. compares the overlay backends (classic vs flat) at large N; then
   5. compares the batch routing kernel against the scalar router:
      routes/s per geometry and the end-to-end sweep wall clock, with
      the batch results asserted equal to the scalar ones.

   Besides the human-readable tables, the measurements land in
   BENCH_<date>.json (name -> ns/run, the sweep timings, and a
   "metrics" section snapshotting the engine's counters/histograms).

   With --smoke only step 3 runs, at CI-friendly sizes: it exists so
   `make bench-smoke` can assert the JSON pipeline end to end in
   seconds rather than minutes. *)

open Bechamel
open Toolkit

(* --- Part 1: regenerate every figure ------------------------------------ *)

(* Figure-quality settings that complete in a couple of minutes; the
   analysis columns are exact regardless. *)
let fig6_config =
  { Experiments.Fig6a.default_config with trials = 3; pairs_per_trial = 1_500 }

let ablation_bits = 12

let regenerate_figures () =
  Fmt.pr "==== Figure regeneration ====@.@.";
  Fmt.pr "%a@." Experiments.Series.pp (Experiments.Fig6a.run fig6_config);
  Fmt.pr "%a@." Experiments.Series.pp (Experiments.Fig6b.run fig6_config);
  Fmt.pr "%a@." Experiments.Series.pp
    (Experiments.Fig7a.run Experiments.Fig7a.default_config);
  Fmt.pr "%a@." Experiments.Series.pp
    (Experiments.Fig7b.run Experiments.Fig7b.default_config);
  Fmt.pr "%a@." Experiments.Classification.pp (Experiments.Classification.run ());
  let chain_rows =
    Experiments.Validation.chain_vs_closed ~hs:[ 1; 4; 8; 12 ] ~qs:[ 0.1; 0.3; 0.5 ] ()
  in
  Fmt.pr "# V1 summary: max |closed-form - chain| = %.3e over %d cases@.@."
    (Experiments.Validation.max_chain_error chain_rows)
    (List.length chain_rows);
  Fmt.pr "%a@." Experiments.Series.pp
    (Experiments.Connectivity.run
       { Experiments.Connectivity.default_config with bits = ablation_bits }
       Rcm.Geometry.Tree);
  Fmt.pr "%a@." Experiments.Series.pp
    (Experiments.Symphony_knobs.run Experiments.Symphony_knobs.default_config);
  Fmt.pr "%a@." Experiments.Series.pp
    (Experiments.Suffix_ablation.run
       { Experiments.Suffix_ablation.default_config with bits = ablation_bits });
  Fmt.pr "%a@." Experiments.Series.pp
    (Experiments.Finger_ablation.run
       { Experiments.Finger_ablation.default_config with bits = ablation_bits });
  let replication_config =
    { Experiments.Replication_sweep.default_config with bits = ablation_bits }
  in
  Fmt.pr "%a@." Experiments.Series.pp (Experiments.Replication_sweep.xor_series replication_config);
  Fmt.pr "%a@." Experiments.Series.pp (Experiments.Replication_sweep.tree_series replication_config);
  Fmt.pr "%a@." Experiments.Series.pp (Experiments.Replication_sweep.ring_series replication_config);
  List.iter
    (fun g ->
      Fmt.pr "%a@." Experiments.Series.pp
        (Experiments.Sparse_occupancy.run Experiments.Sparse_occupancy.default_config g))
    [ Rcm.Geometry.Tree; Rcm.Geometry.Xor; Rcm.Geometry.Ring; Rcm.Geometry.default_symphony ];
  Fmt.pr "%a@." Experiments.Series.pp
    (Experiments.Latency.run_all { Experiments.Latency.default_config with bits = ablation_bits });
  Fmt.pr "%a@." Experiments.Churn_bridge.pp_rows
    (Experiments.Churn_bridge.run Experiments.Churn_bridge.default_config);
  Fmt.pr "%a@." Experiments.Series.pp
    (Experiments.Correlated_failures.run_all Experiments.Correlated_failures.default_config);
  Fmt.pr "%a@." Experiments.Critical_q.pp_rows (Experiments.Critical_q.run ());
  let base_config = { Experiments.Base_sweep.default_config with bits = ablation_bits } in
  Fmt.pr "%a@." Experiments.Series.pp (Experiments.Base_sweep.tree_series base_config);
  Fmt.pr "%a@." Experiments.Series.pp (Experiments.Base_sweep.xor_series base_config);
  Fmt.pr "%a@." Experiments.Series.pp
    (Experiments.Dimension_sweep.run Experiments.Dimension_sweep.default_config);
  Fmt.pr "%a@." Experiments.Series.pp
    (Experiments.Symphony_deployment.run Experiments.Symphony_deployment.default_config);
  Fmt.pr "%a@." Experiments.Thresholds.pp_rows (Experiments.Thresholds.run ());
  Fmt.pr "%a@." Experiments.Series.pp
    (Experiments.Hop_distribution.run Experiments.Hop_distribution.default_config
       Rcm.Geometry.Hypercube)

(* --- Part 2: Bechamel micro-benchmarks ----------------------------------- *)

(* One Test.make per experiment: the analysis kernel that produces each
   figure's columns, and the simulation kernel behind the Fig. 6
   points. *)

let bench_fig6a_analysis =
  Test.make ~name:"fig6a/analysis-column"
    (Staged.stage (fun () ->
         List.iter
           (fun g -> ignore (Rcm.Model.failed_paths_percent g ~d:16 ~q:0.3))
           Experiments.Fig6a.geometries))

let bench_fig6b_analysis =
  Test.make ~name:"fig6b/ring-analysis-point"
    (Staged.stage (fun () ->
         ignore (Rcm.Model.failed_paths_percent Rcm.Geometry.Ring ~d:16 ~q:0.3)))

let bench_fig7a_asymptotic =
  Test.make ~name:"fig7a/all-geometries-d100"
    (Staged.stage (fun () ->
         List.iter
           (fun g -> ignore (Rcm.Model.failed_paths_percent g ~d:100 ~q:0.3))
           Rcm.Geometry.all_default))

let bench_fig7b_sweep =
  Test.make ~name:"fig7b/xor-size-sweep"
    (Staged.stage (fun () ->
         List.iter
           (fun d -> ignore (Rcm.Model.routability Rcm.Geometry.Xor ~d ~q:0.1))
           Experiments.Grid.fig7b_d))

let bench_classification =
  Test.make ~name:"classification/table"
    (Staged.stage (fun () -> ignore (Experiments.Classification.run ())))

let bench_markov_validation =
  Test.make ~name:"validation/xor-chain-h12"
    (Staged.stage (fun () ->
         ignore
           (Markov.Routing_chains.success_probability
              (Markov.Routing_chains.xor ~h:12 ~q:0.3))))

let simulation_trial geometry =
  let bits = 12 in
  Staged.stage (fun () ->
      let rng = Prng.Splitmix.create ~seed:99 in
      let table = Overlay.Table.build ~rng ~bits geometry in
      let alive = Overlay.Failure.sample ~rng ~q:0.2 (Overlay.Table.node_count table) in
      let pool = Overlay.Failure.survivors alive in
      let delivered = ref 0 in
      for _ = 1 to 200 do
        let src, dst = Stats.Sampler.ordered_pair rng pool in
        if Routing.Outcome.is_delivered (Routing.Router.route table ~rng ~alive ~src ~dst)
        then incr delivered
      done;
      !delivered)

let bench_simulation geometry =
  Test.make
    ~name:(Printf.sprintf "fig6-sim/%s-trial-d12" (Rcm.Geometry.slug geometry))
    (simulation_trial geometry)

let bench_percolation =
  Test.make ~name:"a1/percolation-trial-d12"
    (Staged.stage (fun () ->
         ignore
           (Sim.Percolation.run ~trials:1 ~pairs:200 ~seed:3 ~bits:12 ~q:0.2
              Rcm.Geometry.Ring)))

let bench_replication_analysis =
  Test.make ~name:"a5/replicated-xor-analysis-d16"
    (Staged.stage (fun () -> ignore (Rcm.Replication.routability_xor ~d:16 ~q:0.3 ~k:8)))

let bench_sparse_build =
  Test.make ~name:"e6/sparse-chord-build-1k-in-2^16"
    (Staged.stage (fun () ->
         ignore
           (Overlay.Sparse.build
              ~rng:(Prng.Splitmix.create ~seed:4)
              ~bits:16 ~nodes:1024 Rcm.Geometry.Ring)))

let bench_latency_prediction =
  Test.make ~name:"e7/hops-prediction-ring-d12"
    (Staged.stage (fun () ->
         ignore (Experiments.Latency.predicted_hops Rcm.Geometry.Ring ~d:12 ~q:0.2)))

let bench_churn =
  Test.make ~name:"e8/churn-run-d8"
    (Staged.stage (fun () ->
         ignore
           (Sim.Churn.run
              (Sim.Churn.config ~bits:8 ~warmup:10.0 ~measurements:2
                 ~pairs_per_measurement:200 Rcm.Geometry.Xor))))

let bench_session_churn =
  Test.make ~name:"churn/session-run-d8"
    (Staged.stage (fun () ->
         ignore
           (Sim.Session_churn.run
              (Sim.Session_churn.config ~bits:8 ~warmup:10.0 ~measurements:2
                 ~pairs_per_measurement:200 Rcm.Geometry.Xor))))

let all_tests =
  Test.make_grouped ~name:"dht_rcm"
    [
      bench_fig6a_analysis;
      bench_fig6b_analysis;
      bench_fig7a_asymptotic;
      bench_fig7b_sweep;
      bench_classification;
      bench_markov_validation;
      bench_simulation Rcm.Geometry.Tree;
      bench_simulation Rcm.Geometry.Hypercube;
      bench_simulation Rcm.Geometry.Xor;
      bench_simulation Rcm.Geometry.Ring;
      bench_simulation Rcm.Geometry.default_symphony;
      bench_percolation;
      bench_replication_analysis;
      bench_sparse_build;
      bench_latency_prediction;
      bench_churn;
      bench_session_churn;
    ]

let run_benchmarks () =
  Fmt.pr "==== Micro-benchmarks (Bechamel, monotonic clock) ====@.@.";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.filter_map (fun (name, ols) ->
           match Analyze.OLS.estimates ols with
           | Some [ ns_per_run ] ->
               Fmt.pr "%-45s %14.1f ns/run@." name ns_per_run;
               Some (name, ns_per_run)
           | Some _ | None ->
               Fmt.pr "%-45s (no estimate)@." name;
               None)
  in
  rows

(* --- Part 3: domain-pool wall-clock speedup ------------------------------ *)

(* The same Fig. 6(a)-style q-sweep (d = 12), timed on the strictly
   sequential pre-pool path and on the domain pool with the overlay
   cache — the headline number this PR optimises. Both runs produce
   bit-identical results; only the wall clock moves. *)
let sweep_speedup ?(trials = 4) ?(pairs_per_trial = 600) () =
  let cfg =
    Sim.Estimate.config ~trials ~pairs_per_trial ~seed:1006 ~bits:12 ~q:0.0
      Rcm.Geometry.Xor
  in
  let qs = Experiments.Grid.fig6_q in
  let time f =
    let t0 = Unix.gettimeofday () in
    let result = f () in
    (Unix.gettimeofday () -. t0, result)
  in
  let sequential_s, baseline = time (fun () -> Sim.Estimate.run_sweep cfg qs) in
  let domains = max 2 (Exec.Pool.default_domains ()) in
  let cache = Overlay.Table_cache.create () in
  let parallel_s, pooled =
    Exec.Pool.with_pool ~domains (fun pool ->
        time (fun () -> Sim.Estimate.run_sweep ~pool ~cache cfg qs))
  in
  let identical =
    List.for_all2
      (fun (_, a) (_, b) ->
        a.Sim.Estimate.delivered = b.Sim.Estimate.delivered
        && a.Sim.Estimate.attempted = b.Sim.Estimate.attempted)
      baseline pooled
  in
  if not identical then failwith "bench: pooled sweep diverged from the sequential sweep";
  Fmt.pr "@.==== Wall-clock speedup (fig6-sim q-sweep, d=12, %d trials) ====@.@."
    cfg.Sim.Estimate.trials;
  Fmt.pr "overlay builds: sequential %d, cached %d (cache hits %d)@."
    (List.length qs * cfg.Sim.Estimate.trials)
    (Overlay.Table_cache.misses cache)
    (Overlay.Table_cache.hits cache);
  Fmt.pr "wall-clock speedup: %.2fx (1 domain %.3fs -> %d domains %.3fs)@."
    (sequential_s /. parallel_s) sequential_s domains parallel_s;
  (domains, sequential_s, parallel_s)

(* --- Part 4: overlay backend comparison ---------------------------------- *)

(* Classic (per-node heap arrays) versus flat (shared CSR Bigarrays) at
   large N: build time, routing throughput over one failed instance, the
   table's payload size, and the kernel's peak-RSS reading for the
   phase. The flat backend exists to make bits >= 20 runs fit in
   memory; these records are the evidence. *)
type overlay_record = {
  ob_geometry : string;
  ob_backend : string;
  ob_bits : int;
  ob_build_s : float;
  ob_routes_per_s : float;
  ob_table_bytes : int;
  ob_peak_rss_kb : int;
}

let overlay_backend_bench ~bits ~pairs geometry backend =
  (* Shrink the heap and reset the watermark so the reading reflects
     this (geometry, backend) phase, not an earlier one's high water. *)
  Gc.compact ();
  Obs.Rss.reset_peak ();
  let rng = Prng.Splitmix.create ~seed:99 in
  let t0 = Unix.gettimeofday () in
  let table = Overlay.Table.build ~rng ~backend ~bits geometry in
  let build_s = Unix.gettimeofday () -. t0 in
  let alive = Overlay.Failure.sample ~rng ~q:0.2 (Overlay.Table.node_count table) in
  let pool = Overlay.Failure.survivors alive in
  let t1 = Unix.gettimeofday () in
  let delivered = ref 0 in
  for _ = 1 to pairs do
    let src, dst = Stats.Sampler.ordered_pair rng pool in
    if Routing.Outcome.is_delivered (Routing.Router.route table ~rng ~alive ~src ~dst)
    then incr delivered
  done;
  let route_s = Unix.gettimeofday () -. t1 in
  {
    ob_geometry = Rcm.Geometry.slug geometry;
    ob_backend = Overlay.Table.backend_name backend;
    ob_bits = bits;
    ob_build_s = build_s;
    ob_routes_per_s = (if route_s > 0.0 then float_of_int pairs /. route_s else 0.0);
    ob_table_bytes = Overlay.Table.memory_bytes table;
    ob_peak_rss_kb = Option.value ~default:0 (Obs.Rss.peak_kb ());
  }

let overlay_bench ~bits ~pairs () =
  Fmt.pr "@.==== Overlay backends (classic vs flat, d=%d) ====@.@." bits;
  let records =
    List.concat_map
      (fun geometry ->
        List.map
          (fun backend -> overlay_backend_bench ~bits ~pairs geometry backend)
          [ Overlay.Table.Classic; Overlay.Table.Flat ])
      [ Rcm.Geometry.Ring; Rcm.Geometry.Xor ]
  in
  List.iter
    (fun r ->
      Fmt.pr "%-9s %-8s build %7.3fs  %9.0f routes/s  table %8.1f MiB  peak RSS %7.1f MiB@."
        r.ob_geometry r.ob_backend r.ob_build_s r.ob_routes_per_s
        (float_of_int r.ob_table_bytes /. 1048576.0)
        (float_of_int r.ob_peak_rss_kb /. 1024.0))
    records;
  records

(* The headline capacity claim: a full Estimate q-sweep over ring and
   xor on the flat backend at [bits], with the kernel watermark around
   it. At bits = 20 this is the run that exhausts memory without the
   flat backend and must stay under 8 GiB with it. *)
let flat_sweep_bench ~bits ~trials ~pairs () =
  Gc.compact ();
  Obs.Rss.reset_peak ();
  let qs = [ 0.1; 0.3 ] in
  let geometries = [ Rcm.Geometry.Ring; Rcm.Geometry.Xor ] in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun geometry ->
      let cache = Overlay.Table_cache.create () in
      let cfg =
        Sim.Estimate.config ~trials ~pairs_per_trial:pairs ~seed:1006 ~bits ~q:0.0 geometry
      in
      ignore (Sim.Estimate.run_sweep ~cache ~backend:Overlay.Table.Flat cfg qs))
    geometries;
  let wall_s = Unix.gettimeofday () -. t0 in
  let peak_rss_kb = Option.value ~default:0 (Obs.Rss.peak_kb ()) in
  Fmt.pr "@.flat sweep d=%d (ring+xor, %d trials x %d qs x %d pairs): %.3fs, peak RSS %.1f MiB@."
    bits trials (List.length qs) pairs wall_s
    (float_of_int peak_rss_kb /. 1024.0);
  (bits, trials, wall_s, peak_rss_kb)

(* --- Part 5: batch kernel vs scalar router -------------------------------- *)

(* The headline of the batch-kernel PR: per-geometry routes/s of the
   scalar [Router.route] loop against [Route_batch.sample_and_route]
   over the same flat table and failed instance. The batch run first
   replays the scalar run's exact pair count and seed and must deliver
   the same count (the cheap in-bench echo of the bit-identity suite);
   only then is it timed on a larger block so the clock resolution
   does not dominate. *)
type batch_record = {
  bk_geometry : string;
  bk_scalar_routes_per_s : float;
  bk_batch_routes_per_s : float;
  bk_speedup : float;
}

let batch_kernel_bench ~bits ~pairs ~batch_mult geometry =
  let rng = Prng.Splitmix.create ~seed:99 in
  let table = Overlay.Table.build ~rng ~backend:Overlay.Table.Flat ~bits geometry in
  let alive = Overlay.Failure.sample ~rng ~q:0.2 (Overlay.Table.node_count table) in
  let pool = Overlay.Failure.survivors alive in
  let rng_s = Prng.Splitmix.create ~seed:7 in
  let t0 = Unix.gettimeofday () in
  let delivered = ref 0 in
  for _ = 1 to pairs do
    let src, dst = Stats.Sampler.ordered_pair rng_s pool in
    if Routing.Outcome.is_delivered (Routing.Router.route table ~rng:rng_s ~alive ~src ~dst)
    then incr delivered
  done;
  let scalar_s = Unix.gettimeofday () -. t0 in
  let scratch =
    Routing.Route_batch.sample_and_route table
      ~rng:(Prng.Splitmix.create ~seed:7)
      ~alive ~pool ~pairs
  in
  if Routing.Route_batch.delivered_count scratch <> !delivered then
    failwith "bench: batch kernel diverged from the scalar router";
  let rng_b = Prng.Splitmix.create ~seed:7 in
  let batch_pairs = pairs * batch_mult in
  let t1 = Unix.gettimeofday () in
  ignore (Routing.Route_batch.sample_and_route table ~rng:rng_b ~alive ~pool ~pairs:batch_pairs);
  let batch_s = Unix.gettimeofday () -. t1 in
  let per_s pairs s = if s > 0.0 then float_of_int pairs /. s else 0.0 in
  let scalar_rate = per_s pairs scalar_s in
  let batch_rate = per_s batch_pairs batch_s in
  {
    bk_geometry = Rcm.Geometry.slug geometry;
    bk_scalar_routes_per_s = scalar_rate;
    bk_batch_routes_per_s = batch_rate;
    bk_speedup = (if scalar_rate > 0.0 then batch_rate /. scalar_rate else 0.0);
  }

(* The same claim end to end: wall clock of a full Estimate q-sweep
   (ring + xor, flat backend) with the batch kernel on versus off,
   results asserted equal. *)
let batch_sweep_bench ~bits ~trials ~pairs () =
  let qs = [ 0.1; 0.3 ] in
  let geometries = [ Rcm.Geometry.Ring; Rcm.Geometry.Xor ] in
  let run_sweeps () =
    List.map
      (fun geometry ->
        let cache = Overlay.Table_cache.create () in
        let cfg =
          Sim.Estimate.config ~trials ~pairs_per_trial:pairs ~seed:1006 ~bits ~q:0.0
            geometry
        in
        Sim.Estimate.run_sweep ~cache ~backend:Overlay.Table.Flat cfg qs)
      geometries
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let result = f () in
    (Unix.gettimeofday () -. t0, result)
  in
  Routing.Route_batch.set_enabled true;
  let batch_s, batched = time run_sweeps in
  Routing.Route_batch.set_enabled false;
  let scalar_s, scalar = time run_sweeps in
  Routing.Route_batch.set_enabled true;
  let identical =
    List.for_all2
      (List.for_all2 (fun (_, a) (_, b) ->
           a.Sim.Estimate.delivered = b.Sim.Estimate.delivered
           && a.Sim.Estimate.attempted = b.Sim.Estimate.attempted))
      batched scalar
  in
  if not identical then failwith "bench: batch sweep diverged from the scalar sweep";
  (scalar_s, batch_s)

let batch_bench ~bits ~pairs ~batch_mult ~sweep_trials ~sweep_pairs () =
  Fmt.pr "@.==== Batch kernel vs scalar router (flat backend, d=%d) ====@.@." bits;
  let records =
    List.map
      (batch_kernel_bench ~bits ~pairs ~batch_mult)
      [
        Rcm.Geometry.Tree;
        Rcm.Geometry.Hypercube;
        Rcm.Geometry.Xor;
        Rcm.Geometry.Ring;
        Rcm.Geometry.default_symphony;
      ]
  in
  List.iter
    (fun r ->
      Fmt.pr "%-9s scalar %9.0f routes/s  batch %10.0f routes/s  speedup %6.1fx@."
        r.bk_geometry r.bk_scalar_routes_per_s r.bk_batch_routes_per_s r.bk_speedup)
    records;
  let sweep_scalar_s, sweep_batch_s =
    batch_sweep_bench ~bits ~trials:sweep_trials ~pairs:sweep_pairs ()
  in
  Fmt.pr "full sweep d=%d (ring+xor): scalar %.3fs -> batch %.3fs (%.1fx)@." bits
    sweep_scalar_s sweep_batch_s (sweep_scalar_s /. sweep_batch_s);
  (records, sweep_scalar_s, sweep_batch_s)

(* --- Part 6: session-churn steady state ----------------------------------- *)

(* A small routability-vs-churn-rate sweep through the session engine:
   the wall clock tracks the event loop plus k-bucket maintenance cost,
   and the per-point records land in the JSON so the curves themselves
   are regression-checked (validate.ml bounds every field). *)
let churn_bench ~smoke () =
  let cfg =
    {
      Experiments.Churn_curves.default_config with
      bits = (if smoke then 8 else 10);
      session_means = (if smoke then [ 2.0; 8.0 ] else [ 2.0; 8.0; 32.0 ]);
      measurements = (if smoke then 2 else 3);
      pairs = (if smoke then 200 else 400);
    }
  in
  let geometries =
    if smoke then [ Rcm.Geometry.Xor; Rcm.Geometry.Ring ]
    else Experiments.Churn_curves.default_geometries
  in
  let t0 = Unix.gettimeofday () in
  let points = Experiments.Churn_curves.run ~geometries cfg in
  let wall_s = Unix.gettimeofday () -. t0 in
  Fmt.pr "@.==== Session churn (steady state, d=%d) ====@.@." cfg.Experiments.Churn_curves.bits;
  Fmt.pr "%a" Experiments.Churn_curves.pp_points points;
  Fmt.pr "churn sweep: %d points in %.3fs@." (List.length points) wall_s;
  (cfg, points, wall_s)

(* --- Part 7: replicated storage -------------------------------------------- *)

(* A small availability-vs-q sweep through the storage layer: the wall
   clock tracks placement, quorum probing and read-repair, and the
   per-point records land in the JSON so the availability and survival
   curves are regression-checked (validate.ml bounds every field and
   cross-checks survival against the Leslie closed form). *)
let storage_bench ~smoke () =
  let cfg =
    {
      Experiments.Storage_sweep.default_config with
      bits = (if smoke then 8 else 10);
      nodes = (if smoke then 128 else 512);
      keys = (if smoke then 16 else 64);
      reads = (if smoke then 64 else 256);
      mode =
        Experiments.Storage_sweep.Static
          {
            qs = (if smoke then [ 0.1; 0.3 ] else [ 0.1; 0.3; 0.5 ]);
            trials = (if smoke then 2 else 4);
          };
    }
  in
  let geometries =
    if smoke then [ Rcm.Geometry.Ring; Rcm.Geometry.Xor ]
    else Experiments.Storage_sweep.default_geometries
  in
  let t0 = Unix.gettimeofday () in
  let points = Experiments.Storage_sweep.run ~geometries cfg in
  let wall_s = Unix.gettimeofday () -. t0 in
  Fmt.pr "@.==== Replicated storage (quorum reads + read-repair, d=%d) ====@.@."
    cfg.Experiments.Storage_sweep.bits;
  Fmt.pr "%a" Experiments.Storage_sweep.pp_points points;
  Fmt.pr "storage sweep: %d points in %.3fs@." (List.length points) wall_s;
  (cfg, points, wall_s)

(* --- Part 8: per-node load telemetry --------------------------------------- *)

(* The direct overhead question: the same batched pair block routed
   with a loadmap sink installed versus without (best of three, so a
   stray scheduler hiccup does not become a regression report). The
   counting points are two int stores per hop inside the C drivers, so
   the ratio should stay close to 1. *)
let loadmap_overhead ~bits ~pairs () =
  let rng = Prng.Splitmix.create ~seed:99 in
  let table =
    Overlay.Table.build ~rng ~backend:Overlay.Table.Flat ~bits Rcm.Geometry.Xor
  in
  let alive = Overlay.Failure.sample ~rng ~q:0.2 (Overlay.Table.node_count table) in
  let pool = Overlay.Failure.survivors alive in
  let route () =
    ignore
      (Routing.Route_batch.sample_and_route table
         ~rng:(Prng.Splitmix.create ~seed:7)
         ~alive ~pool ~pairs)
  in
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let base_s = time_best route in
  let lm = Obs.Loadmap.create ~nodes:(Overlay.Table.node_count table) in
  let sink_s = time_best (fun () -> Obs.Loadmap.with_sink lm route) in
  (pairs, base_s, sink_s, if base_s > 0.0 then sink_s /. base_s else 0.0)

(* A small hotspot sweep over both planes: the per-point congestion and
   Gini records land in the JSON so load concentration itself is
   regression-checked (validate.ml bounds every field). *)
let loadmap_bench ~smoke () =
  let cfg =
    {
      Experiments.Hotspot_sweep.default_config with
      bits = (if smoke then 8 else 10);
      pairs = (if smoke then 200 else 1_000);
      qs = (if smoke then [ 0.1; 0.3 ] else [ 0.1; 0.3; 0.5 ]);
      storage_nodes = (if smoke then 128 else 512);
      keys = (if smoke then 16 else 64);
      reads = (if smoke then 64 else 256);
      zipf_ss = (if smoke then [ 0.0; 0.8 ] else [ 0.0; 0.8; 1.2 ]);
      trials = 2;
    }
  in
  let routing_geometries =
    if smoke then [ Rcm.Geometry.Xor; Rcm.Geometry.Ring ]
    else Experiments.Hotspot_sweep.default_routing_geometries
  in
  let storage_geometries =
    if smoke then [ Rcm.Geometry.Ring; Rcm.Geometry.Xor ]
    else Experiments.Hotspot_sweep.default_storage_geometries
  in
  let t0 = Unix.gettimeofday () in
  let points =
    Experiments.Hotspot_sweep.run ~routing_geometries ~storage_geometries cfg
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Fmt.pr "@.==== Per-node load telemetry (hotspot sweep, d=%d) ====@.@."
    cfg.Experiments.Hotspot_sweep.bits;
  Fmt.pr "%a" Experiments.Hotspot_sweep.pp_points points;
  let overhead =
    loadmap_overhead ~bits:cfg.Experiments.Hotspot_sweep.bits
      ~pairs:(if smoke then 20_000 else 100_000)
      ()
  in
  let ov_pairs, base_s, sink_s, ratio = overhead in
  Fmt.pr "loadmap sweep: %d points in %.3fs@." (List.length points) wall_s;
  Fmt.pr "loadmap overhead: %d batched pairs, %.4fs -> %.4fs with sink (%.2fx)@."
    ov_pairs base_s sink_s ratio;
  (cfg, points, wall_s, overhead)

(* --- Part 9: ReCord plugin geometry ---------------------------------------- *)

(* The plugin family through the same harness as the built-ins: per-base
   scalar vs batch routes/s (the batch lane replays the scalar run and
   must deliver the same count, like Part 5), plus the E13 hop-pmf
   total-variation distance between the chain prediction and the
   simulated histogram at h = 4 — the number the runtest tolerance
   pins, recorded here so drift is visible across PRs. *)
let record_geometry h =
  match Rcm.Geometry.of_string (Printf.sprintf "record:h=%d" h) with
  | Ok g -> g
  | Error e -> failwith e

let record_bench ~smoke () =
  (* bits must be divisible by every digit width in the sweep (h = 16
     needs 4); 8 and 12 both qualify. *)
  let bits = if smoke then 8 else 12 in
  Fmt.pr "@.==== ReCord plugin (h-ary recursive rings, d=%d) ====@.@." bits;
  let records =
    List.map
      (fun h ->
        let r =
          batch_kernel_bench ~bits ~pairs:(if smoke then 500 else 2_000)
            ~batch_mult:(if smoke then 10 else 50)
            (record_geometry h)
        in
        Fmt.pr "%-12s scalar %9.0f routes/s  batch %10.0f routes/s  speedup %6.1fx@."
          r.bk_geometry r.bk_scalar_routes_per_s r.bk_batch_routes_per_s r.bk_speedup;
        r)
      [ 2; 4; 16 ]
  in
  let hop_cfg =
    { Experiments.Hop_distribution.default_config with
      bits;
      pairs = (if smoke then 500 else 2_000);
    }
  in
  let g = record_geometry 4 in
  let tv =
    Experiments.Hop_distribution.total_variation
      (Experiments.Hop_distribution.predicted g ~d:bits ~q:hop_cfg.Experiments.Hop_distribution.q)
      (Experiments.Hop_distribution.simulated hop_cfg g)
  in
  Fmt.pr "hop-pmf total variation (record:h=4, chain vs sim): %.4f@." tv;
  (bits, records, tv)

(* --- Machine-readable output --------------------------------------------- *)

let json_escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let write_json rows ~domains ~sequential_s ~parallel_s ~overlay ~flat_sweep ~batch ~churn
    ~storage ~loadmap ~record =
  let tm = Unix.localtime (Unix.time ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
      tm.Unix.tm_mday
  in
  let path = Printf.sprintf "BENCH_%s.json" date in
  (* Atomic (temp + rename): validate.ml reads these files, and a crash
     mid-write must leave the previous day's record or nothing — never
     truncated JSON. *)
  Obs.Atomic_file.write path (fun oc ->
      Printf.fprintf oc "{\n  \"date\": %S,\n  \"ns_per_run\": {\n" date;
      List.iteri
        (fun i (name, ns) ->
          Printf.fprintf oc "    \"%s\": %.1f%s\n" (json_escape name) ns
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  },\n  \"fig6_sim_sweep\": {\n";
      Printf.fprintf oc "    \"domains\": %d,\n" domains;
      Printf.fprintf oc "    \"sequential_s\": %.6f,\n" sequential_s;
      Printf.fprintf oc "    \"parallel_s\": %.6f,\n" parallel_s;
      Printf.fprintf oc "    \"speedup\": %.4f\n  },\n" (sequential_s /. parallel_s);
      Printf.fprintf oc "  \"overlay\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"geometry\": %S, \"backend\": %S, \"bits\": %d, \"build_s\": %.6f, \
             \"routes_per_s\": %.1f, \"table_bytes\": %d, \"peak_rss_kb\": %d}%s\n"
            r.ob_geometry r.ob_backend r.ob_bits r.ob_build_s r.ob_routes_per_s
            r.ob_table_bytes r.ob_peak_rss_kb
            (if i = List.length overlay - 1 then "" else ","))
        overlay;
      Printf.fprintf oc "  ],\n";
      let sweep_bits, sweep_trials, sweep_wall_s, sweep_rss_kb = flat_sweep in
      Printf.fprintf oc
        "  \"flat_sweep\": {\"bits\": %d, \"trials\": %d, \"wall_s\": %.6f, \
         \"peak_rss_kb\": %d},\n"
        sweep_bits sweep_trials sweep_wall_s sweep_rss_kb;
      let batch_bits, batch_records, batch_sweep_scalar_s, batch_sweep_batch_s = batch in
      Printf.fprintf oc "  \"batch\": {\n    \"bits\": %d,\n    \"kernels\": [\n" batch_bits;
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "      {\"geometry\": %S, \"scalar_routes_per_s\": %.1f, \
             \"batch_routes_per_s\": %.1f, \"speedup\": %.4f}%s\n"
            r.bk_geometry r.bk_scalar_routes_per_s r.bk_batch_routes_per_s r.bk_speedup
            (if i = List.length batch_records - 1 then "" else ","))
        batch_records;
      Printf.fprintf oc
        "    ],\n    \"sweep\": {\"scalar_s\": %.6f, \"batch_s\": %.6f, \
         \"speedup\": %.4f}\n  },\n"
        batch_sweep_scalar_s batch_sweep_batch_s
        (batch_sweep_scalar_s /. batch_sweep_batch_s);
      let churn_cfg, churn_points, churn_wall_s = churn in
      Printf.fprintf oc
        "  \"churn\": {\n    \"bits\": %d,\n    \"wall_s\": %.6f,\n    \"points\": [\n"
        churn_cfg.Experiments.Churn_curves.bits churn_wall_s;
      List.iteri
        (fun i p ->
          Printf.fprintf oc "      %s%s\n"
            (Experiments.Churn_curves.to_json churn_cfg p)
            (if i = List.length churn_points - 1 then "" else ","))
        churn_points;
      Printf.fprintf oc "    ]\n  },\n";
      let storage_cfg, storage_points, storage_wall_s = storage in
      Printf.fprintf oc
        "  \"storage\": {\n    \"bits\": %d,\n    \"wall_s\": %.6f,\n    \"points\": [\n"
        storage_cfg.Experiments.Storage_sweep.bits storage_wall_s;
      List.iteri
        (fun i p ->
          Printf.fprintf oc "      %s%s\n"
            (Experiments.Storage_sweep.to_json storage_cfg p)
            (if i = List.length storage_points - 1 then "" else ","))
        storage_points;
      Printf.fprintf oc "    ]\n  },\n";
      let loadmap_cfg, loadmap_points, loadmap_wall_s, overhead = loadmap in
      let ov_pairs, ov_base_s, ov_sink_s, ov_ratio = overhead in
      Printf.fprintf oc
        "  \"loadmap\": {\n    \"bits\": %d,\n    \"wall_s\": %.6f,\n    \
         \"overhead\": {\"pairs\": %d, \"base_s\": %.6f, \"sink_s\": %.6f, \
         \"ratio\": %.4f},\n    \"points\": [\n"
        loadmap_cfg.Experiments.Hotspot_sweep.bits loadmap_wall_s ov_pairs
        ov_base_s ov_sink_s ov_ratio;
      List.iteri
        (fun i p ->
          Printf.fprintf oc "      %s%s\n"
            (Experiments.Hotspot_sweep.to_json loadmap_cfg p)
            (if i = List.length loadmap_points - 1 then "" else ","))
        loadmap_points;
      Printf.fprintf oc "    ]\n  },\n";
      let record_bits, record_records, record_tv = record in
      Printf.fprintf oc "  \"record\": {\n    \"bits\": %d,\n    \"kernels\": [\n" record_bits;
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "      {\"geometry\": %S, \"scalar_routes_per_s\": %.1f, \
             \"batch_routes_per_s\": %.1f, \"speedup\": %.4f}%s\n"
            r.bk_geometry r.bk_scalar_routes_per_s r.bk_batch_routes_per_s r.bk_speedup
            (if i = List.length record_records - 1 then "" else ","))
        record_records;
      Printf.fprintf oc "    ],\n    \"hop_tv\": %.6f\n  },\n" record_tv;
      Printf.fprintf oc "  \"metrics\": %s\n}\n" (Obs.Metrics.to_json ()));
  Fmt.pr "wrote %s@." path

let () =
  let smoke = Array.exists (String.equal "--smoke") Sys.argv in
  let rows =
    if smoke then
      (* CI-sized run: skip figure regeneration and the Bechamel suite,
         exercise only the sweep + metrics + JSON plumbing. *)
      []
    else begin
      regenerate_figures ();
      run_benchmarks ()
    end
  in
  (* The sweep runs with metrics on so the BENCH json carries the
     cache/pool counters alongside the timings; instrumentation never
     reads the simulation PRNG streams, so the results are unaffected. *)
  Obs.Metrics.set_enabled true;
  let domains, sequential_s, parallel_s =
    if smoke then sweep_speedup ~trials:2 ~pairs_per_trial:150 () else sweep_speedup ()
  in
  (* Backend comparison at 2^20 nodes by default (CI smoke shrinks to
     2^12); DHT_RCM_BENCH_BITS overrides either way. *)
  let overlay_bits =
    match Option.bind (Sys.getenv_opt "DHT_RCM_BENCH_BITS") int_of_string_opt with
    | Some b when b >= 4 && b <= Idspace.Space.max_bits -> b
    | Some _ | None -> if smoke then 12 else 20
  in
  let overlay =
    overlay_bench ~bits:overlay_bits ~pairs:(if smoke then 300 else 2_000) ()
  in
  let flat_sweep =
    if smoke then flat_sweep_bench ~bits:overlay_bits ~trials:1 ~pairs:100 ()
    else flat_sweep_bench ~bits:overlay_bits ~trials:2 ~pairs:500 ()
  in
  (* Batch-kernel evidence: routes/s per geometry plus the end-to-end
     sweep wall clock, scalar versus batch, at the same bits as the
     backend comparison. *)
  let batch_records, batch_sweep_scalar_s, batch_sweep_batch_s =
    (* The sweep pair count scales with the table: at small bits the
       build is cheap and 100 pairs suffice, but at bits >= 16 a sweep
       that routes only hundreds of pairs is all table construction and
       says nothing about routing throughput. *)
    let sweep_pairs = if overlay_bits >= 16 then 20_000 else 100 in
    if smoke then
      batch_bench ~bits:overlay_bits ~pairs:1_000 ~batch_mult:20 ~sweep_trials:1
        ~sweep_pairs ()
    else
      batch_bench ~bits:overlay_bits ~pairs:2_000 ~batch_mult:50 ~sweep_trials:2
        ~sweep_pairs:(max 500 sweep_pairs) ()
  in
  let batch = (overlay_bits, batch_records, batch_sweep_scalar_s, batch_sweep_batch_s) in
  let churn = churn_bench ~smoke () in
  let storage = storage_bench ~smoke () in
  let loadmap = loadmap_bench ~smoke () in
  let record = record_bench ~smoke () in
  (* The cumulative process watermark lands in the metrics section as a
     counter, so the JSON's "metrics" block records peak memory even
     where the per-phase resets are unsupported. *)
  Option.iter
    (fun kb -> Obs.Metrics.incr_named ~by:kb "process/peak_rss_kb")
    (Obs.Rss.peak_kb ());
  write_json rows ~domains ~sequential_s ~parallel_s ~overlay ~flat_sweep ~batch ~churn
    ~storage ~loadmap ~record
