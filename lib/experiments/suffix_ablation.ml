type config = { bits : int; qs : float list; trials : int; pairs : int; seed : int }

let default_config = { bits = 12; qs = Grid.fig6_q; trials = 3; pairs = 2_000; seed = 303 }

(* A3: what the XOR chain of Fig. 5(b) actually models. With
   suffix-preserving bucket contacts (each contact differs in exactly
   one bit) the chain's assumptions hold and simulated routability sits
   on or above the analysis; with Kademlia's randomised suffixes each
   hop re-randomises the low-order bits, routing visits more phases than
   the chain accounts for, and routability drops below the analysis. *)
let run cfg =
  let sim ~build q =
    Stats.Binomial_ci.point
      (Table_sim.routability ~build ~q ~trials:cfg.trials ~pairs:cfg.pairs ~seed:cfg.seed)
  in
  Series.tabulate
    ~title:
      (Printf.sprintf "A3: XOR bucket-suffix ablation, N=2^%d (routability vs q)" cfg.bits)
    ~x_label:"q" ~x:cfg.qs
    [
      ("analysis", fun q -> Rcm.Model.routability Rcm.Geometry.Xor ~d:cfg.bits ~q);
      ( "det-suffix",
        sim ~build:(fun _rng -> Overlay.Table.build_deterministic_xor ~bits:cfg.bits ()) );
      ( "rand-suffix",
        sim ~build:(fun rng -> Overlay.Table.build ~rng ~bits:cfg.bits Rcm.Geometry.Xor) );
    ]

(* Ordering implied by the model: deterministic-suffix routability
   dominates the analysis, which dominates... nothing provable for the
   randomised variant, but empirically rand <= det always. *)
let ordering_violations ?(slack = 0.02) series =
  let get label = Series.find_column series label in
  match (get "analysis", get "det-suffix", get "rand-suffix") with
  | Some ana, Some det, Some rand ->
      let out = ref [] in
      Array.iteri
        (fun i q ->
          if det.Series.values.(i) +. slack < ana.Series.values.(i) then
            out := (q, "det-suffix < analysis") :: !out;
          if rand.Series.values.(i) > det.Series.values.(i) +. slack then
            out := (q, "rand-suffix > det-suffix") :: !out)
        series.Series.x;
      List.rev !out
  | _, _, _ -> invalid_arg "Suffix_ablation.ordering_violations: not an A3 series"
