(* Packed alive-bitset: one bit per node in an int Bigarray, 32 bits
   used per element.

   Why 32 bits of an [int] element instead of an [int64] Bigarray:
   reading an int64 element materialises a boxed [Int64.t] unless the
   compiler can prove it dead, which the non-flambda compiler cannot in
   a loop that only tests one bit — that would put an allocation on
   every alive-check of the batch routing kernel. An [int] element is
   immediate, so the membership test below compiles to one load, one
   shift and one mask. Using only the low 32 bits of each word keeps
   popcounts and tail masking inside 62-bit arithmetic on every
   platform OCaml supports.

   The payload lives outside the OCaml heap, so a mask sampled once is
   read concurrently by the routing kernels of every domain without
   adding GC scanning work — the same sharing argument as [Flat]. *)

type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { length : int; words : words }

let bits_per_word = 32

let word_count len = (len + (bits_per_word - 1)) lsr 5

let length t = t.length

let words t = t.words

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative length";
  let words = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (word_count len) in
  Bigarray.Array1.fill words 0;
  { length = len; words }

(* All-ones, with the bits beyond [len] in the last word kept zero so
   popcount-based accounting never sees ghost members. *)
let all len =
  let t = create len in
  Bigarray.Array1.fill t.words 0xFFFF_FFFF;
  let tail = len land (bits_per_word - 1) in
  if tail <> 0 then t.words.{word_count len - 1} <- (1 lsl tail) - 1;
  t

let check t v context =
  if v < 0 || v >= t.length then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d outside [0, %d)" context v t.length)

let[@inline] unsafe_get t v =
  Bigarray.Array1.unsafe_get t.words (v lsr 5) lsr (v land 31) land 1 <> 0

let get t v =
  check t v "get";
  unsafe_get t v

let set t v b =
  check t v "set";
  let w = v lsr 5 and bit = 1 lsl (v land 31) in
  let old = Bigarray.Array1.unsafe_get t.words w in
  Bigarray.Array1.unsafe_set t.words w (if b then old lor bit else old land lnot bit)

(* 32-bit popcount in 62-bit arithmetic (words never exceed 2^32). *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x5555_5555) in
  let x = (x land 0x3333_3333) + ((x lsr 2) land 0x3333_3333) in
  let x = (x + (x lsr 4)) land 0x0f0f_0f0f in
  (x * 0x0101_0101) lsr 24 land 0x3f

let count t =
  let total = ref 0 in
  for w = 0 to Bigarray.Array1.dim t.words - 1 do
    total := !total + popcount32 (Bigarray.Array1.unsafe_get t.words w)
  done;
  !total

(* Member ids ascending: words in index order, bits low-to-high, so the
   result matches a left-to-right scan of the equivalent [bool array]. *)
let members t =
  let out = Array.make (count t) 0 in
  let idx = ref 0 in
  for w = 0 to Bigarray.Array1.dim t.words - 1 do
    let word = ref (Bigarray.Array1.unsafe_get t.words w) in
    let v = ref (w lsl 5) in
    while !word <> 0 do
      if !word land 1 = 1 then begin
        out.(!idx) <- !v;
        incr idx
      end;
      word := !word lsr 1;
      incr v
    done
  done;
  out

let of_bool_array mask =
  let t = create (Array.length mask) in
  Array.iteri (fun v b -> if b then set t v true) mask;
  t

let to_bool_array t = Array.init t.length (unsafe_get t)

let copy t =
  let fresh = create t.length in
  Bigarray.Array1.blit t.words fresh.words;
  fresh
