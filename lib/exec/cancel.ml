exception Cancelled

let exit_code = 130

let flag = Atomic.make false

let requested () = Atomic.get flag

let request () = Atomic.set flag true

let reset () = Atomic.set flag false

let check () = if Atomic.get flag then raise Cancelled

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    let handler _signal =
      (* First signal: ask politely and let trial boundaries notice.
         Second signal: the user insists — stop now. [exit] still runs
         [at_exit], so buffered channels are flushed. *)
      if Atomic.get flag then exit exit_code else Atomic.set flag true
    in
    ignore (Sys.signal Sys.sigint (Sys.Signal_handle handler));
    ignore (Sys.signal Sys.sigterm (Sys.Signal_handle handler))
  end
