(** Batched routing kernel over the flat CSR overlay backend.

    Routes a whole pair set per call through monomorphic, per-geometry
    int loops: direct loads from {!Overlay.Flat}'s [offsets]/[targets]
    Bigarrays, packed-bitset liveness tests ({!Overlay.Bitset}) and
    reusable off-heap scratch buffers — zero allocation per hop, and
    10–50× the scalar [Router.route] throughput at [bits = 20].

    {1 Bit-identity}

    For every geometry the kernel visits candidates in exactly the
    scalar router's order and consumes PRNG draws in exactly the
    scalar order, so outcomes, hop counts, stuck nodes and the
    post-batch [rng] state equal the scalar path's — the simulation
    layers switch between the two freely without changing a single
    published number. {!sample_and_route} additionally inlines
    [Stats.Sampler.ordered_pair] draw-for-draw so pair-sampling and
    hypercube forwarding draws interleave exactly as in the scalar
    trial loop. Metrics are aggregated in scratch and flushed once per
    batch; the resulting [--metrics] totals are equal (not just close)
    to the scalar path's.

    {1 Load telemetry}

    When the calling domain has an {!Obs.Loadmap} sink installed
    ({!Obs.Loadmap.with_sink}), both drivers bump its per-node counters
    at exactly the scalar [Router] hook's counting points: one
    [Route_traversal] per accepted hop (every node the message reaches
    after the source, including the final one) and one
    [Route_termination] per pair, at the destination when delivered or
    at the stuck node when dropped — so batch and [--no-batch] per-node
    counts are exactly equal (pinned by [test/test_batch.ml]). The
    slices are passed to the C drivers as Bigarray pointers, one lookup
    per batch; without a sink the kernels receive zero-length buffers
    and skip counting on a NULL test. Both drivers raise
    [Invalid_argument] when a sink is installed whose node count
    differs from the routed table's.

    {1 Scope}

    Only tables with the {!Overlay.Table.Flat} backend are accepted
    (callers with classic rows use {!Overlay.Table.flatten} first, or
    stay on the scalar path — which churn/sparse overlays do, since
    their representations are mutable or non-CSR). *)

type scratch
(** Reusable per-batch result buffers plus outcome/hop-histogram
    accumulators. A scratch instance is single-domain state: share one
    per domain (see {!domain_scratch}), never across domains. *)

val create_scratch : unit -> scratch

val domain_scratch : unit -> scratch
(** The calling domain's scratch (domain-local storage, created on
    first use) — what {!Sim.Estimate}/{!Sim.Percolation} trials use so
    each {!Exec.Pool} domain reuses one buffer set across its whole
    trial block. *)

val route_many :
  ?scratch:scratch ->
  Overlay.Table.t ->
  rng:Prng.Splitmix.t ->
  alive:Overlay.Failure.t ->
  (int * int) array ->
  scratch
(** [route_many table ~rng ~alive pairs] routes every [(src, dst)]
    pair and returns the scratch holding per-pair outcomes ([scratch]
    defaults to {!domain_scratch}; the return value is that same
    scratch, valid until the next batch run on it). [rng] is consumed
    by the hypercube kernel only, exactly as in the scalar router.
    @raise Invalid_argument if the table's backend is not [Flat], if
    the mask length differs from the node count, or a pair member is
    outside the id space. *)

val sample_and_route :
  ?scratch:scratch ->
  Overlay.Table.t ->
  rng:Prng.Splitmix.t ->
  alive:Overlay.Failure.t ->
  pool:int array ->
  pairs:int ->
  scratch
(** [sample_and_route table ~rng ~alive ~pool ~pairs] draws [pairs]
    ordered pairs of distinct members of [pool] (draw-for-draw the
    scalar [Sampler.ordered_pair] sequence) and routes each as it is
    drawn — one kernel call per trial for the simulation layers.
    @raise Invalid_argument if the backend is not [Flat], the mask
    length mismatches, [pool] has fewer than two members, or [pairs]
    is negative. *)

(** {1 Reading results}

    Valid until the scratch is reused by a later batch. *)

val batch_size : scratch -> int
(** Pairs routed by the last batch. *)

val delivered_count : scratch -> int

val dropped_count : scratch -> int

val is_delivered : scratch -> int -> bool

val hops : scratch -> int -> int
(** Hops taken by pair [k] (on delivery, the full path length; on a
    drop, hops completed before sticking). *)

val outcome : scratch -> int -> Outcome.t
(** Pair [k]'s outcome, reconstructed exactly as the scalar router
    would have returned it. *)

val delivered_hops_rev_order : scratch -> float list
(** Delivered hop counts as floats, in routing order — the exact list
    the scalar trial loop accumulates for the hop summary. *)

val raw_hops : scratch -> (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The per-pair hop counts of the last batch (a window into the
    scratch buffer: no copy, invalidated by the next batch). *)

val raw_stuck : scratch -> (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Per-pair stuck node ids, [-1] for delivered pairs (same aliasing
    caveat as {!raw_hops}). *)

(** {1 Custom-family lanes}

    A custom geometry routes under the batch engine through its
    family's {e lane}. Without registration the family gets the
    {!Scalar} lane: its registered [Router] custom router is driven
    pair by pair with pair-sampling and forwarding draws interleaved —
    bit-identical to the scalar trial loop for {e any} router,
    randomized ones included, with the batch path's per-batch metrics
    flush and loadmap slice accounting. Registering a {!Block} lane
    opts into the C-driver fast path. *)

type block_router =
  Overlay.Flat.targets ->
  Overlay.Bitset.words ->
  Overlay.Flat.offsets ->
  int array ->
  int array ->
  int ->
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  int ->
  int ->
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  unit
(** A block driver with the built-in C lanes' calling convention:
    [targets alive_words offsets srcs dsts n hops_out stuck_out bits
    degree trav term]. It must route pair [k] with the scalar router's
    candidate order (lane interleaving must be invisible in results),
    write [stuck_out.(k) = -1] on delivery or the stuck node id
    otherwise, and bump the [trav]/[term] loadmap slices at the scalar
    counting points (skip when zero-length). The [bits] argument is
    lane-defined — wrap the raw external in a closure to pack extra
    static parameters into it (the built-in ring lane passes a
    distance mask there). Block lanes are valid only for families
    whose router draws no randomness while forwarding. *)

type lane = Scalar | Block of block_router

val register_custom_lane : family:string -> ((string * int) list -> lane) -> unit
(** Registers how a family resolves its lane from its parameters.
    Call at module-init time from the plugin library; families that
    never call this default to {!Scalar}.
    @raise Invalid_argument if the family is already registered. *)

(** {1 Enabling}

    The simulation layers consult this switch to decide between the
    batch kernel and the scalar loop (the kernel itself always runs
    when called directly). Default: enabled. The CLI exposes
    [--no-batch] for byte-identity checks against the scalar path. *)

val set_enabled : bool -> unit

val enabled : unit -> bool
