type key = Rcm.Geometry.t * int * int64 * Table.backend

type entry = { table : Table.t; resume : int64 }

type t = {
  lock : Mutex.t;
  entries : (key, entry) Hashtbl.t;
  (* Insertion order, oldest first; may contain keys already removed by
     [clear] — eviction skips those. *)
  order : key Queue.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable double_builds : int;
}

let create ?(capacity = 128) () =
  if capacity < 1 then invalid_arg "Table_cache.create: capacity < 1";
  {
    lock = Mutex.create ();
    entries = Hashtbl.create 64;
    order = Queue.create ();
    capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
    double_builds = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Drop the oldest entry still present. Only the table just inserted by
   the caller is guaranteed to survive; evicted tables stay valid for
   whoever already holds them (they are immutable), the cache just
   forgets them. Never resets the whole table: an in-flight q-sweep
   sharing a hot entry must not lose it to an unrelated insertion. *)
let evict_oldest t =
  let rec loop () =
    match Queue.take_opt t.order with
    | None -> ()
    | Some old ->
        if Hashtbl.mem t.entries old then begin
          Hashtbl.remove t.entries old;
          t.evictions <- t.evictions + 1;
          Obs.Metrics.incr_named "cache/evictions"
        end
        else loop () (* stale queue entry from [clear] *)
  in
  loop ()

let get t ?(backend = Table.Classic) ~bits ~build_seed geometry =
  let key = (geometry, bits, build_seed, backend) in
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.entries key with
  | Some e ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      Obs.Metrics.incr_named "cache/hits";
      (e.table, e.resume)
  | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      Obs.Metrics.incr_named "cache/misses";
      (* Build outside the lock: concurrent misses on the same key may
         build twice, but the constructions are deterministic in the
         key, so whichever entry lands first is the one everybody
         shares from then on. *)
      let table, resume =
        Obs.Trace.span "overlay/build"
          ~attrs:
            (if Obs.Trace.enabled () then
               [
                 ("geometry", Obs.Trace.String (Rcm.Geometry.name geometry));
                 ("bits", Obs.Trace.Int bits);
                 ("backend", Obs.Trace.String (Table.backend_name backend));
               ]
             else [])
          (fun () ->
            let rng = Prng.Splitmix.of_int64 build_seed in
            let table = Table.build ~rng ~backend ~bits geometry in
            (table, Prng.Splitmix.state rng))
      in
      let fresh = { table; resume } in
      let entry =
        locked t (fun () ->
            match Hashtbl.find_opt t.entries key with
            | Some existing ->
                (* Lost the build race: count the wasted construction. *)
                t.double_builds <- t.double_builds + 1;
                Obs.Metrics.incr_named "cache/double_builds";
                existing
            | None ->
                if Hashtbl.length t.entries >= t.capacity then evict_oldest t;
                Hashtbl.add t.entries key fresh;
                Queue.add key t.order;
                fresh)
      in
      (entry.table, entry.resume)

let hits t = locked t (fun () -> t.hits)

let misses t = locked t (fun () -> t.misses)

let evictions t = locked t (fun () -> t.evictions)

let double_builds t = locked t (fun () -> t.double_builds)

let length t = locked t (fun () -> Hashtbl.length t.entries)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.entries;
      Queue.clear t.order)
