(** Routing over {!Overlay.Digit_table} (base-b geometries).

    [`Tree]: strict leading-digit correction (base-b Plaxton);
    [`Xor]: fall back to lower differing digits when the leading
    contact is dead (base-b Kademlia). Both reduce to the binary
    routers at group = 1. *)

val route :
  ?on_hop:(int -> unit) ->
  mode:[ `Tree | `Xor ] ->
  Overlay.Digit_table.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
