type t = float

let zero = neg_infinity

let one = 0.0

let of_float x =
  if x < 0.0 then invalid_arg "Logspace.of_float: negative argument"
  else log x

let of_log x = x

let to_float x = exp x

let to_log x = x

let is_zero x = x = neg_infinity

let mul = ( +. )

let div = ( -. )

(* log(e^a + e^b) anchored at the larger operand so the exp never
   overflows. *)
let add a b =
  if is_zero a then b
  else if is_zero b then a
  else if a >= b then a +. Special.log1pexp (b -. a)
  else b +. Special.log1pexp (a -. b)

(* log(e^a - e^b), requiring a >= b. *)
let sub a b =
  if is_zero b then a
  else if b > a then invalid_arg "Logspace.sub: negative result"
  else if a = b then zero
  else a +. Special.log1mexp (b -. a)

let compare = Float.compare

let sum terms =
  match Array.length terms with
  | 0 -> zero
  | _ ->
      let m = Array.fold_left Float.max neg_infinity terms in
      if is_zero m || m = infinity then m
      else
        let acc = Kahan.create () in
        Array.iter (fun t -> Kahan.add acc (exp (t -. m))) terms;
        m +. log (Kahan.total acc)

let sum_fn ~lo ~hi f =
  if lo > hi then zero
  else begin
    let m = ref neg_infinity in
    for i = lo to hi do
      m := Float.max !m (f i)
    done;
    if is_zero !m || !m = infinity then !m
    else begin
      let acc = Kahan.create () in
      for i = lo to hi do
        Kahan.add acc (exp (f i -. !m))
      done;
      !m +. log (Kahan.total acc)
    end
  end

let pow x k = x *. k

let pp ppf x = Fmt.pf ppf "exp(%g)" x
