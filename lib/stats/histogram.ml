type t = { counts : int array; mutable total : int; mutable overflow : int }

let create ~buckets =
  if buckets <= 0 then invalid_arg "Histogram.create: non-positive bucket count"
  else { counts = Array.make buckets 0; total = 0; overflow = 0 }

let add t bucket =
  if bucket < 0 then invalid_arg "Histogram.add: negative bucket"
  else begin
    t.total <- t.total + 1;
    if bucket < Array.length t.counts then
      t.counts.(bucket) <- t.counts.(bucket) + 1
    else t.overflow <- t.overflow + 1
  end

let count t bucket =
  if bucket < 0 || bucket >= Array.length t.counts then 0 else t.counts.(bucket)

let total t = t.total

let overflow t = t.overflow

let buckets t = Array.length t.counts

let fraction t bucket =
  if t.total = 0 then 0.0 else float_of_int (count t bucket) /. float_of_int t.total

let mean t =
  if t.total - t.overflow = 0 then nan
  else begin
    let weighted = ref 0 in
    Array.iteri (fun i c -> weighted := !weighted + (i * c)) t.counts;
    float_of_int !weighted /. float_of_int (t.total - t.overflow)
  end

let to_fractions t = Array.init (buckets t) (fraction t)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Array.iteri
    (fun i c -> if c > 0 then Fmt.pf ppf "%3d: %d (%.2f%%)@," i c (100.0 *. fraction t i))
    t.counts;
  if t.overflow > 0 then Fmt.pf ppf ">=%d: %d@," (buckets t) t.overflow;
  Fmt.pf ppf "@]"
