(** Greedy clockwise routing over any ring-structured table — Chord
    fingers (section 3.4) and Symphony near neighbours plus shortcuts
    (section 3.5). A hop is taken to the alive neighbour minimising the
    remaining clockwise distance, never overshooting. *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  alive:bool array ->
  src:int ->
  dst:int ->
  Outcome.t
