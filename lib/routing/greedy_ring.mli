(** Greedy clockwise routing over any ring-structured table — Chord
    fingers (section 3.4) and Symphony near neighbours plus shortcuts
    (section 3.5). A hop is taken to the alive neighbour minimising the
    remaining clockwise distance, never overshooting.

    Progress measure: the clockwise distance [(dst - v) mod 2^bits].
    Never overshooting keeps it strictly decreasing, which gives the
    no-backtracking and termination guarantees of {!Router}; a node
    whose every forward contact (including its successor) is dead is a
    dead end, even if an anticlockwise neighbour survives. *)

val route :
  ?on_hop:(int -> unit) ->
  Overlay.Table.t ->
  alive:Overlay.Failure.t ->
  src:int ->
  dst:int ->
  Outcome.t
(** [on_hop] is called with every node reached after [src], the final
    one included. *)
