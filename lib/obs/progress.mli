(** Live progress line for long sweeps.

    A single process-wide reporter, like {!Metrics} and {!Trace}: the
    sweep drivers ([Sim.Estimate.run_sweep], [Sim.Percolation.run])
    declare a phase with its task total, every completed trial {!tick}s
    it — from whichever domain ran the trial — and the supervisor
    ({!Exec.Pool.supervised}) reports retries and failures. The
    reporter repaints one carriage-return line on stderr, rate-limited
    to a few frames per second, showing completed/total, throughput,
    the current grid group (e.g. [q=0.30]), a per-group and an overall
    ETA, and failed/retried counts.

    {b Off by default; observation-only.} The default {!mode} is [Off]
    so library and test use never prints anything; the CLI selects
    [Auto] (enabled only when stderr is a TTY) or forces [On]/[Off]
    with [--progress]/[--no-progress]. Every entry point is gated on
    one atomic load when inactive. The reporter writes only to its own
    channel (stderr), reads only the wall clock, and never touches a
    PRNG stream: stdout and every exported artefact are byte-identical
    with progress on or off (pinned by [test/test_obs.ml] and
    [test/test_cli.ml]). *)

type mode =
  | Auto  (** enabled iff the output channel is a TTY *)
  | On
  | Off

val set_mode : mode -> unit
(** Select when phases may render (default [Off]). Takes effect at the
    next {!start}. *)

val set_channel : out_channel -> unit
(** Redirect rendering (default [stderr]; tests point it at a file).
    The TTY check of [Auto] mode is performed against this channel. *)

val active : unit -> bool
(** True between a {!start} that enabled rendering and its {!finish}. *)

val start :
  ?label:string -> ?groups:(string * int) list -> total:int -> unit -> unit
(** Begin a phase of [total] tasks. [groups] optionally names the grid
    groups the tasks fall into with each group's task count (the
    estimator passes one group per q value, [trials] tasks each), which
    enables the per-group ETA. Starting a new phase while one is active
    replaces it — sequential sweeps (one per geometry) each get a fresh
    line. No-op when the mode (or a non-TTY channel under [Auto]) says
    so. *)

val tick : ?group:string -> unit -> unit
(** One task finished (possibly from a worker domain). [group] selects
    the grid group for the per-group display. Rendering is rate-limited
    internally; most ticks cost a mutex and a clock read. *)

val note_retry : unit -> unit
(** A supervised task attempt failed and is being retried. *)

val note_failed : unit -> unit
(** A supervised task exhausted its retries. *)

val finish : unit -> unit
(** End the phase and erase the line (so summaries printed afterwards
    start on a clean line). Idempotent; no-op when inactive. *)

(**/**)

val safe_rate : completed:int -> elapsed:float -> float
(** The throughput estimate the rendered line and its ETAs are built
    from: [completed / elapsed], except that a zero, near-zero (below
    one microsecond), negative or non-finite [elapsed] — and any
    quotient that overflows to a non-finite value — yields [0.0], the
    "no estimate yet" sentinel rendered as ["-:--"]. Exposed for the
    regression tests only. *)
