open Helpers

let bits = 8

let space = Idspace.Space.create ~bits

let test_space_size () =
  Alcotest.(check int) "size" 256 (Idspace.Space.size space);
  Alcotest.(check int) "mask" 255 (Idspace.Space.mask space);
  Alcotest.(check int) "bits" 8 (Idspace.Space.bits space)

let test_space_bounds () =
  Alcotest.check_raises "too many bits"
    (Invalid_argument "Space.create: bits must be in 1..30 (got 31)") (fun () ->
      ignore (Idspace.Space.create ~bits:31))

let test_space_contains () =
  Alcotest.(check bool) "0 in" true (Idspace.Space.contains space 0);
  Alcotest.(check bool) "255 in" true (Idspace.Space.contains space 255);
  Alcotest.(check bool) "256 out" false (Idspace.Space.contains space 256);
  Alcotest.(check bool) "-1 out" false (Idspace.Space.contains space (-1))

let test_space_fold () =
  Alcotest.(check int) "sum of ids" (255 * 256 / 2)
    (Idspace.Space.fold_ids space ~init:0 ~f:( + ))

let test_xor_distance () =
  Alcotest.(check int) "0b0110 xor 0b0101" 3 (Idspace.Id.xor_distance 6 5);
  Alcotest.(check int) "self" 0 (Idspace.Id.xor_distance 42 42)

let test_hamming () =
  Alcotest.(check int) "0xFF vs 0x00" 8 (Idspace.Id.hamming_distance 0xFF 0x00);
  Alcotest.(check int) "6 vs 5" 2 (Idspace.Id.hamming_distance 6 5)

let test_ring_distance () =
  Alcotest.(check int) "forward" 3 (Idspace.Id.ring_distance ~bits 10 13);
  Alcotest.(check int) "wraps" 253 (Idspace.Id.ring_distance ~bits 13 10);
  Alcotest.(check int) "self" 0 (Idspace.Id.ring_distance ~bits 9 9)

let test_floor_log2 () =
  Alcotest.(check int) "1" 0 (Idspace.Id.floor_log2 1);
  Alcotest.(check int) "2" 1 (Idspace.Id.floor_log2 2);
  Alcotest.(check int) "255" 7 (Idspace.Id.floor_log2 255);
  Alcotest.(check int) "256" 8 (Idspace.Id.floor_log2 256)

let test_phases () =
  Alcotest.(check int) "0" 0 (Idspace.Id.phases_of_distance 0);
  Alcotest.(check int) "1" 1 (Idspace.Id.phases_of_distance 1);
  Alcotest.(check int) "2" 2 (Idspace.Id.phases_of_distance 2);
  Alcotest.(check int) "3" 2 (Idspace.Id.phases_of_distance 3);
  Alcotest.(check int) "4" 3 (Idspace.Id.phases_of_distance 4)

let test_bit_numbering () =
  (* Bit 1 is the MSB: flipping it on 0 gives 1000_0000. *)
  Alcotest.(check int) "flip MSB" 0x80 (Idspace.Id.flip_bit ~bits 0 1);
  Alcotest.(check int) "flip LSB" 0x01 (Idspace.Id.flip_bit ~bits 0 8);
  Alcotest.(check bool) "get MSB" true (Idspace.Id.get_bit ~bits 0x80 1);
  Alcotest.(check bool) "get LSB" false (Idspace.Id.get_bit ~bits 0x80 8)

let test_bit_bounds () =
  Alcotest.check_raises "bit 0" (Invalid_argument "Id: bit index outside 1..bits") (fun () ->
      ignore (Idspace.Id.bit_mask ~bits 0))

let test_highest_differing_bit () =
  Alcotest.(check (option int)) "equal" None (Idspace.Id.highest_differing_bit ~bits 7 7);
  (* 0b0000_0110 vs 0b0000_0101 differ first at bit 7 (value 2). *)
  Alcotest.(check (option int)) "6 vs 5" (Some 7) (Idspace.Id.highest_differing_bit ~bits 6 5);
  Alcotest.(check (option int)) "msb" (Some 1) (Idspace.Id.highest_differing_bit ~bits 0 0x80)

let test_common_prefix () =
  Alcotest.(check int) "equal" 8 (Idspace.Id.common_prefix_length ~bits 9 9);
  Alcotest.(check int) "6 vs 5" 6 (Idspace.Id.common_prefix_length ~bits 6 5);
  Alcotest.(check int) "none" 0 (Idspace.Id.common_prefix_length ~bits 0 0x80)

let test_with_suffix () =
  (* Keep the first 3 bits (111) of 0b1110_0000; the remaining 5 bits
     come from the suffix 0b10101, giving 111_10101. *)
  Alcotest.(check int) "suffix" 0b111_10101
    (Idspace.Id.with_suffix ~bits 0b1110_0000 ~prefix_len:3 ~suffix:0b10101);
  Alcotest.(check int) "full prefix" 42 (Idspace.Id.with_suffix ~bits 42 ~prefix_len:8 ~suffix:0)

let test_binary_string () =
  Alcotest.(check string) "0x80" "10000000" (Idspace.Id.to_binary_string ~bits 0x80);
  Alcotest.(check string) "5" "00000101" (Idspace.Id.to_binary_string ~bits 5)

let id_gen = QCheck2.Gen.int_range 0 255

let xor_symmetry =
  qcheck "xor distance symmetric" QCheck2.Gen.(pair id_gen id_gen) (fun (a, b) ->
      Idspace.Id.xor_distance a b = Idspace.Id.xor_distance b a)

let xor_triangle =
  qcheck "xor satisfies triangle inequality"
    QCheck2.Gen.(triple id_gen id_gen id_gen)
    (fun (a, b, c) ->
      Idspace.Id.xor_distance a c <= Idspace.Id.xor_distance a b + Idspace.Id.xor_distance b c)

let hamming_equals_popcount_of_xor =
  qcheck "hamming = popcount of xor" QCheck2.Gen.(pair id_gen id_gen) (fun (a, b) ->
      let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
      Idspace.Id.hamming_distance a b = pop (Idspace.Id.xor_distance a b))

let ring_antisymmetry =
  qcheck "ring distances of a pair sum to 0 or 2^bits"
    QCheck2.Gen.(pair id_gen id_gen)
    (fun (a, b) ->
      let fwd = Idspace.Id.ring_distance ~bits a b in
      let bwd = Idspace.Id.ring_distance ~bits b a in
      if a = b then fwd = 0 && bwd = 0 else fwd + bwd = 256)

let flip_involution =
  qcheck "flip_bit is an involution"
    QCheck2.Gen.(pair id_gen (int_range 1 8))
    (fun (a, i) -> Idspace.Id.flip_bit ~bits (Idspace.Id.flip_bit ~bits a i) i = a)

let prefix_plus_differ =
  qcheck "common prefix + highest differing bit are consistent"
    QCheck2.Gen.(pair id_gen id_gen)
    (fun (a, b) ->
      match Idspace.Id.highest_differing_bit ~bits a b with
      | None -> a = b && Idspace.Id.common_prefix_length ~bits a b = bits
      | Some i ->
          Idspace.Id.common_prefix_length ~bits a b = i - 1
          && Idspace.Id.get_bit ~bits a i <> Idspace.Id.get_bit ~bits b i)

let with_suffix_preserves_prefix =
  qcheck "with_suffix preserves the prefix"
    QCheck2.Gen.(triple id_gen (int_range 0 8) id_gen)
    (fun (id, prefix_len, suffix) ->
      let out = Idspace.Id.with_suffix ~bits id ~prefix_len ~suffix in
      prefix_len = 0 || Idspace.Id.common_prefix_length ~bits id out >= prefix_len)

let suite =
  [
    ("space size", `Quick, test_space_size);
    ("space bounds", `Quick, test_space_bounds);
    ("space contains", `Quick, test_space_contains);
    ("space fold", `Quick, test_space_fold);
    ("xor distance", `Quick, test_xor_distance);
    ("hamming distance", `Quick, test_hamming);
    ("ring distance", `Quick, test_ring_distance);
    ("floor_log2", `Quick, test_floor_log2);
    ("phases of distance", `Quick, test_phases);
    ("bit numbering (MSB first)", `Quick, test_bit_numbering);
    ("bit bounds", `Quick, test_bit_bounds);
    ("highest differing bit", `Quick, test_highest_differing_bit);
    ("common prefix", `Quick, test_common_prefix);
    ("with_suffix", `Quick, test_with_suffix);
    ("binary string", `Quick, test_binary_string);
    xor_symmetry;
    xor_triangle;
    hamming_equals_popcount_of_xor;
    ring_antisymmetry;
    flip_involution;
    prefix_plus_differ;
    with_suffix_preserves_prefix;
  ]
