(* V1: the closed-form p(h,q) expressions of section 4.3 against exact
   absorption probabilities of the corresponding Markov chains. *)

type chain_row = {
  label : string;
  h : int;
  q : float;
  closed_form : float;
  chain : float;
  abs_error : float;
}

let chain_row ~label ~h ~q ~closed_form ~chain =
  { label; h; q; closed_form; chain; abs_error = Float.abs (closed_form -. chain) }

let default_qs = [ 0.05; 0.1; 0.2; 0.3; 0.5; 0.7 ]

let default_hs = [ 1; 2; 3; 5; 8; 12 ]

let chain_vs_closed ?(hs = default_hs) ?(qs = default_qs) ?(symphony_d = 16) () =
  let rows = ref [] in
  let add row = rows := row :: !rows in
  List.iter
    (fun q ->
      List.iter
        (fun h ->
          add
            (chain_row ~label:"tree" ~h ~q
               ~closed_form:(Rcm.Tree.success_probability ~q ~h)
               ~chain:Markov.Routing_chains.(success_probability (tree ~h ~q)));
          add
            (chain_row ~label:"hypercube" ~h ~q
               ~closed_form:(Rcm.Hypercube.success_probability ~q ~h)
               ~chain:Markov.Routing_chains.(success_probability (hypercube ~h ~q)));
          add
            (chain_row ~label:"xor" ~h ~q
               ~closed_form:(Rcm.Xor_routing.success_probability ~q ~h)
               ~chain:Markov.Routing_chains.(success_probability (xor ~h ~q)));
          add
            (chain_row ~label:"ring" ~h ~q
               ~closed_form:(Rcm.Ring.success_probability ~q ~h)
               ~chain:Markov.Routing_chains.(success_probability (ring ~h ~q)));
          if h <= symphony_d then
            add
              (chain_row ~label:"symphony" ~h ~q
                 ~closed_form:
                   (Rcm.Symphony.success_probability ~d:symphony_d ~q ~k_n:1 ~k_s:1 ~h)
                 ~chain:
                   Markov.Routing_chains.(
                     success_probability (symphony ~d:symphony_d ~phases:h ~q ~k_n:1 ~k_s:1))))
        hs)
    qs;
  List.rev !rows

let max_chain_error rows =
  List.fold_left (fun acc r -> Float.max acc r.abs_error) 0.0 rows

(* V2: analysis against our Monte-Carlo simulation. Tree and hypercube
   chains model the simulated protocol exactly; ring is a lower bound;
   XOR and Symphony models idealise the protocol (suffix randomisation
   and shortcut overshoot respectively), so only the gap is recorded. *)

type sim_status =
  [ `Matches | `Bound_holds | `Gap of float | `Violation of float | `No_data ]

type sim_row = {
  geometry : Rcm.Geometry.t;
  q : float;
  analysis : float;
  simulated : Stats.Binomial_ci.t option;
  status : sim_status;
}

(* A run that attempted no pairs (ci = None) carries no information
   either way: report it as `No_data, never as a match or violation. *)
let classify_sim_row geometry ~analysis ~ci =
  match ci with
  | None -> `No_data
  | Some ci -> (
      let tolerance = 0.02 in
      let low = Stats.Binomial_ci.lower ci -. tolerance in
      let high = Stats.Binomial_ci.upper ci +. tolerance in
      match geometry with
      | Rcm.Geometry.Tree | Rcm.Geometry.Hypercube ->
          if analysis >= low && analysis <= high then `Matches
          else `Violation (Float.abs (analysis -. Stats.Binomial_ci.point ci))
      | Rcm.Geometry.Ring ->
          if Stats.Binomial_ci.point ci >= analysis -. tolerance then `Bound_holds
          else `Violation (analysis -. Stats.Binomial_ci.point ci)
      | Rcm.Geometry.Xor | Rcm.Geometry.Symphony _ ->
          `Gap (Stats.Binomial_ci.point ci -. analysis)
      | Rcm.Geometry.Custom _ as g -> (
          (* A custom family declared [`Exact_model] is held to the
             tree/hypercube standard; a [`Lower_bound] one must sit at
             or above its analysis, like ring. *)
          match Rcm.Model.analysis_kind g with
          | `Exact_model ->
              if analysis >= low && analysis <= high then `Matches
              else `Violation (Float.abs (analysis -. Stats.Binomial_ci.point ci))
          | `Lower_bound ->
              if Stats.Binomial_ci.point ci >= analysis -. tolerance then `Bound_holds
              else `Violation (analysis -. Stats.Binomial_ci.point ci)))

let sim_vs_analysis ?(bits = 12) ?(qs = [ 0.05; 0.1; 0.2; 0.3 ]) ?(trials = 3)
    ?(pairs_per_trial = 2_000) ?(seed = 2006) () =
  List.concat_map
    (fun geometry ->
      List.map
        (fun q ->
          let analysis = Rcm.Model.routability geometry ~d:bits ~q in
          let result =
            Sim.Estimate.run
              (Sim.Estimate.config ~trials ~pairs_per_trial ~seed ~bits ~q geometry)
          in
          let ci = result.Sim.Estimate.ci in
          { geometry; q; analysis; simulated = ci; status = classify_sim_row geometry ~analysis ~ci })
        qs)
    Rcm.Geometry.all_default

let sim_violations rows =
  List.filter (fun r -> match r.status with `Violation _ -> true | _ -> false) rows

let pp_chain_rows ppf rows =
  Fmt.pf ppf "# V1: closed-form p(h,q) vs exact Markov-chain absorption@.";
  Fmt.pf ppf "%-10s %4s %6s %14s %14s %10s@." "geometry" "h" "q" "closed" "chain" "error";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-10s %4d %6.2f %14.10f %14.10f %10.2e@." r.label r.h r.q r.closed_form
        r.chain r.abs_error)
    rows;
  Fmt.pf ppf "max |error| = %.3e@." (max_chain_error rows)

let pp_sim_rows ppf rows =
  Fmt.pf ppf "# V2: analytical routability vs Monte-Carlo simulation@.";
  Fmt.pf ppf "%-10s %6s %10s %24s %s@." "geometry" "q" "analysis" "simulated (95%% CI)" "status";
  List.iter
    (fun r ->
      let status =
        match r.status with
        | `Matches -> "matches"
        | `Bound_holds -> "bound holds"
        | `Gap g -> Printf.sprintf "gap %+.4f (model idealisation)" g
        | `Violation v -> Printf.sprintf "VIOLATION %.4f" v
        | `No_data -> "no data"
      in
      Fmt.pf ppf "%-10s %6.2f %10.4f %24s %s@."
        (Rcm.Geometry.slug r.geometry)
        r.q r.analysis
        (match r.simulated with
        | Some ci -> Fmt.str "%a" Stats.Binomial_ci.pp ci
        | None -> "no routable pairs")
        status)
    rows
