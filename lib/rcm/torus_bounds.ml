open Numerics

(* RCM sandwich bounds for CAN on a dim-dimensional torus of side s
   (N = s^dim; the paper's hypercube analysis is the exact s = 2 case).

   Greedy routing offers one candidate per unfinished dimension, so at
   a point with remaining distance r the number of options u satisfies
   1 <= u <= min(dim, r): every trajectory's success probability lies
   between prod (1 - q) (tree-like pessimism) and
   prod_i (1 - q^min(dim, h-i)) (all dimensions stay unfinished as long
   as possible). At s = 2 remaining distance equals unfinished
   dimensions, the two ends of the sandwich meet the exact hypercube
   product, and the upper bound *is* Eq. 2. *)

let check ~dim ~side =
  if dim < 1 then invalid_arg "Torus_bounds: dim < 1";
  if side < 2 then invalid_arg "Torus_bounds: side < 2"

let max_distance ~dim ~side =
  check ~dim ~side;
  dim * (side / 2)

(* n(h): nodes at torus L1 distance h, by convolving the per-dimension
   circular-distance counts (1 at r = 0; 2 for 0 < r < s/2; 1 at
   r = s/2 when s is even). *)
let population ~dim ~side =
  check ~dim ~side;
  let half = side / 2 in
  let single r =
    if r = 0 then 1.0
    else if 2 * r < side then 2.0
    else if 2 * r = side then 1.0
    else 0.0
  in
  let max_dist = max_distance ~dim ~side in
  let counts = ref (Array.make (max_dist + 1) 0.0) in
  !counts.(0) <- 1.0;
  for _ = 1 to dim do
    let next = Array.make (max_dist + 1) 0.0 in
    Array.iteri
      (fun total count ->
        if count > 0.0 then
          for r = 0 to half do
            if total + r <= max_dist then
              next.(total + r) <- next.(total + r) +. (count *. single r)
          done)
      !counts;
    counts := next
  done;
  !counts

let network_size ~dim ~side =
  Kahan.sum_array (population ~dim ~side)

let success_lower ~q ~h =
  Spec.check_q q;
  Prob.pow (1.0 -. q) h

let success_upper ~dim ~q ~h =
  Spec.check_q q;
  if h < 0 then invalid_arg "Torus_bounds.success_upper: negative h"
  else begin
    let acc = Kahan.create () in
    let rec loop i =
      if i >= h then exp (Kahan.total acc)
      else begin
        let options = min dim (h - i) in
        let dead = Prob.pow q options in
        if dead >= 1.0 then 0.0
        else begin
          Kahan.add acc (Float.log1p (-.dead));
          loop (i + 1)
        end
      end
    in
    loop 0
  end

let routability_bound ~dim ~side ~q ~p =
  check ~dim ~side;
  Spec.check_q q;
  let n = population ~dim ~side in
  let reachable = Kahan.create () in
  Array.iteri (fun h count -> if h >= 1 then Kahan.add reachable (count *. p h)) n;
  let peers = ((1.0 -. q) *. network_size ~dim ~side) -. 1.0 in
  if peers <= 0.0 then 0.0 else Prob.clamp (Kahan.total reachable /. peers)

let routability_lower ~dim ~side ~q =
  routability_bound ~dim ~side ~q ~p:(fun h -> success_lower ~q ~h)

let routability_upper ~dim ~side ~q =
  routability_bound ~dim ~side ~q ~p:(fun h -> success_upper ~dim ~q ~h)
