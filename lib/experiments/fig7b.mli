(** Experiment F7B — Fig. 7(b): routability versus system size at fixed
    q = 0.1 for all five geometries. Tree and Symphony decay
    monotonically toward zero; hypercube, XOR and ring stay highly
    routable out to billions of nodes. *)

type config = { q : float; ds : int list }

val default_config : config
val geometries : Rcm.Geometry.t list

val run : config -> Series.t

val monotonically_decaying : ?final_below:float -> Series.t -> label:string -> bool
(** True when the column never increases with d and ends below
    [final_below] (default 0.3) — the unscalable signature. *)

val stays_routable : Series.t -> label:string -> floor:float -> bool
(** True when the column never drops below [floor] — the scalable
    signature. *)
