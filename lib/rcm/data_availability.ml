let check_r r = if r < 1 then invalid_arg "Data_availability: r must be >= 1"

let check_quorum ~r ~name k =
  if k < 1 || k > r then
    invalid_arg (Printf.sprintf "Data_availability: %s must be in [1, r]" name)

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

let replica_survival ~q ~r ~quorum =
  check_r r;
  Spec.check_q q;
  if quorum <= 0 then 1.
  else if quorum > r then 0.
  else begin
    let p = 1. -. q in
    (* Sum the smaller tail for accuracy, then complement if needed. *)
    let tail_from lo hi =
      let acc = ref 0. in
      for k = lo to hi do
        acc :=
          !acc
          +. Numerics.Binomial.choose_float r k
             *. Float.pow p (float_of_int k)
             *. Float.pow q (float_of_int (r - k))
      done;
      !acc
    in
    let upper = r - quorum + 1 and lower = quorum in
    if upper <= lower then clamp01 (tail_from quorum r)
    else clamp01 (1. -. tail_from 0 (quorum - 1))
  end

let expected_alive ~q ~r =
  check_r r;
  Spec.check_q q;
  float_of_int r *. (1. -. q)

let read_write_survival ~q ~r ~rq ~wq =
  check_r r;
  check_quorum ~r ~name:"rq" rq;
  check_quorum ~r ~name:"wq" wq;
  replica_survival ~q ~r ~quorum:(max rq wq)

let read_your_writes ~r ~rq ~wq =
  check_r r;
  check_quorum ~r ~name:"rq" rq;
  check_quorum ~r ~name:"wq" wq;
  rq + wq > r
