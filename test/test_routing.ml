open Helpers

let bits = 8

let size = 1 lsl bits

let build ?(seed = 29) geometry =
  Overlay.Table.build ~rng:(rng_of_seed seed) ~bits geometry

let all_alive = Overlay.Failure.none size

let route ?(rng_seed = 31) table ~alive ~src ~dst =
  Routing.Router.route table ~rng:(rng_of_seed rng_seed) ~alive ~src ~dst

(* --- No failures: everything delivers, with the right hop counts. ----- *)

let test_all_pairs_deliver_without_failures () =
  List.iter
    (fun g ->
      let table = build g in
      let failures = ref 0 in
      for src = 0 to size - 1 do
        (* A spread of destinations rather than the full quadratic set. *)
        List.iter
          (fun offset ->
            let dst = (src + offset) mod size in
            if dst <> src then
              match route table ~alive:all_alive ~src ~dst with
              | Routing.Outcome.Delivered _ -> ()
              | Routing.Outcome.Dropped _ -> incr failures)
          [ 1; 7; 85; 128; 255 ]
      done;
      Alcotest.(check int) (Rcm.Geometry.name g ^ ": no drops at q=0") 0 !failures)
    Rcm.Geometry.all_default

let test_self_route_zero_hops () =
  List.iter
    (fun g ->
      let table = build g in
      Alcotest.(check bool) "0 hops" true
        (Routing.Outcome.equal
           (route table ~alive:all_alive ~src:5 ~dst:5)
           (Routing.Outcome.Delivered { hops = 0 })))
    Rcm.Geometry.all_default

let test_tree_hops_equal_hamming () =
  let table = build Rcm.Geometry.Tree in
  for src = 0 to 63 do
    let dst = (src * 37 + 11) land 255 in
    if dst <> src then
      match route table ~alive:all_alive ~src ~dst with
      | Routing.Outcome.Delivered { hops } ->
          Alcotest.(check int) "hops = hamming" (Idspace.Id.hamming_distance src dst) hops
      | Routing.Outcome.Dropped _ -> Alcotest.fail "dropped without failures"
  done

let test_hypercube_hops_equal_hamming () =
  let table = build Rcm.Geometry.Hypercube in
  for src = 0 to 63 do
    let dst = 255 - src in
    if dst <> src then
      match route table ~alive:all_alive ~src ~dst with
      | Routing.Outcome.Delivered { hops } ->
          Alcotest.(check int) "hops = hamming" (Idspace.Id.hamming_distance src dst) hops
      | Routing.Outcome.Dropped _ -> Alcotest.fail "dropped without failures"
  done

let test_ring_hops_at_most_popcount () =
  (* Deterministic Chord with all fingers alive resolves the binary
     expansion of the distance: hops = popcount(distance). *)
  let table = build Rcm.Geometry.Ring in
  for src = 0 to 63 do
    let dst = (src + 147) land 255 in
    match route table ~alive:all_alive ~src ~dst with
    | Routing.Outcome.Delivered { hops } ->
        Alcotest.(check int) "hops = popcount(dist)"
          (Idspace.Id.hamming_distance 0 (Idspace.Id.ring_distance ~bits src dst))
          hops
    | Routing.Outcome.Dropped _ -> Alcotest.fail "dropped without failures"
  done

let test_xor_distance_decreases () =
  let table = build Rcm.Geometry.Xor in
  let src = 3 and dst = 200 in
  let path = ref [ src ] in
  let outcome =
    Routing.Xor_router.route ~on_hop:(fun v -> path := v :: !path) table ~alive:all_alive
      ~src ~dst
  in
  Alcotest.(check bool) "delivered" true (Routing.Outcome.is_delivered outcome);
  let rec check_decreasing = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "xor distance strictly decreases" true
          (Idspace.Id.xor_distance b dst < Idspace.Id.xor_distance a dst);
        check_decreasing rest
    | [ _ ] | [] -> ()
  in
  check_decreasing (List.rev !path)

let test_route_with_path () =
  let table = build Rcm.Geometry.Ring in
  let outcome, path =
    Routing.Router.route_with_path table ~rng:(rng_of_seed 1) ~alive:all_alive ~src:0 ~dst:5
  in
  Alcotest.(check bool) "delivered" true (Routing.Outcome.is_delivered outcome);
  Alcotest.(check int) "path length = hops + 1"
    (Routing.Outcome.hops outcome + 1)
    (List.length path);
  Alcotest.(check int) "starts at src" 0 (List.hd path);
  Alcotest.(check int) "ends at dst" 5 (List.nth path (List.length path - 1))

(* --- Failures ------------------------------------------------------------ *)

let test_tree_dead_neighbor_drops () =
  let table = build Rcm.Geometry.Tree in
  (* Route 0 -> 255 must first hop to 128; kill it. *)
  let alive = Overlay.Failure.none size in
  Overlay.Failure.kill alive [| 128 |];
  match route table ~alive ~src:0 ~dst:255 with
  | Routing.Outcome.Dropped { hops = 0; stuck_at = 0 } -> ()
  | o -> Alcotest.failf "expected immediate drop, got %a" Routing.Outcome.pp o

let test_hypercube_routes_around_failure () =
  let table = build Rcm.Geometry.Hypercube in
  (* 0 -> 3 via 1 or 2; killing 1 must still deliver via 2. *)
  let alive = Overlay.Failure.none size in
  Overlay.Failure.kill alive [| 1 |];
  match route table ~alive ~src:0 ~dst:3 with
  | Routing.Outcome.Delivered { hops = 2 } -> ()
  | o -> Alcotest.failf "expected 2-hop delivery, got %a" Routing.Outcome.pp o

let test_hypercube_drops_when_surrounded () =
  let table = build Rcm.Geometry.Hypercube in
  let alive = Overlay.Failure.none size in
  Overlay.Failure.kill alive [| 1; 2 |];
  match route table ~alive ~src:0 ~dst:3 with
  | Routing.Outcome.Dropped { stuck_at = 0; _ } -> ()
  | o -> Alcotest.failf "expected drop at source, got %a" Routing.Outcome.pp o

let test_ring_suboptimal_progress () =
  (* 0 -> 6 normally goes via finger 2 (node 4). Killing 4 forces
     0 -> 2 (finger 1) -> 6: the suboptimal hop's progress is
     preserved. *)
  let table = build Rcm.Geometry.Ring in
  let alive = Overlay.Failure.none size in
  Overlay.Failure.kill alive [| 4 |];
  match route table ~alive ~src:0 ~dst:6 with
  | Routing.Outcome.Delivered { hops = 2 } -> ()
  | o -> Alcotest.failf "expected 2 hops via node 2, got %a" Routing.Outcome.pp o

let test_ring_successor_chain () =
  (* With only successors alive on the way, Chord degenerates to a
     successor walk: 0 -> 1 -> 2 -> 3. *)
  let table = build Rcm.Geometry.Ring in
  let alive = Overlay.Failure.none size in
  Overlay.Failure.kill alive [| 2 |];
  match route table ~alive ~src:0 ~dst:3 with
  | Routing.Outcome.Delivered { hops = 2 } ->
      (* 0 -> 1 (successor^... actually finger 1 of 1 reaches 3). *)
      ()
  | Routing.Outcome.Delivered { hops } -> Alcotest.failf "delivered in %d hops" hops
  | Routing.Outcome.Dropped _ -> Alcotest.fail "dropped"

let test_symphony_walks_ring () =
  let table = build (Rcm.Geometry.Symphony { k_n = 1; k_s = 1 }) in
  (* Successor-only delivery always possible at q=0, even if long. *)
  match route table ~alive:all_alive ~src:10 ~dst:9 with
  | Routing.Outcome.Delivered { hops } -> Alcotest.(check bool) "hops <= 255" true (hops <= 255)
  | Routing.Outcome.Dropped _ -> Alcotest.fail "dropped without failures"

let test_dropped_messages_report_position () =
  let table = build Rcm.Geometry.Tree in
  let alive = Overlay.Failure.of_bool_array (Array.make size false) in
  Overlay.Failure.set alive 0 true;
  Overlay.Failure.set alive 255 true;
  match route table ~alive ~src:0 ~dst:255 with
  | Routing.Outcome.Dropped { stuck_at; hops } ->
      Alcotest.(check int) "stuck at source" 0 stuck_at;
      Alcotest.(check int) "no hops" 0 hops
  | Routing.Outcome.Delivered _ -> Alcotest.fail "cannot deliver through dead nodes"

let test_route_guards () =
  let table = build Rcm.Geometry.Tree in
  Alcotest.(check bool) "src outside space" true
    (try
       ignore (route table ~alive:all_alive ~src:(-1) ~dst:0);
       false
     with Invalid_argument _ -> true)

(* Path nodes (except possibly src) must be alive in any delivered
   route, for every geometry, under random failures. *)
let delivered_paths_are_alive =
  qcheck "delivered paths only traverse alive nodes"
    QCheck2.Gen.(int_range 0 2_000)
    (fun seed ->
      let rng = rng_of_seed seed in
      List.for_all
        (fun g ->
          let table = build ~seed g in
          let alive = Overlay.Failure.sample ~rng ~q:0.2 size in
          let pool = Overlay.Failure.survivors alive in
          Array.length pool < 2
          ||
          let src, dst = Stats.Sampler.ordered_pair rng pool in
          let outcome, path = Routing.Router.route_with_path table ~rng ~alive ~src ~dst in
          match outcome with
          | Routing.Outcome.Delivered { hops } ->
              List.for_all (fun v -> Overlay.Failure.get alive v) path
              && hops = List.length path - 1
              && List.nth path (List.length path - 1) = dst
          | Routing.Outcome.Dropped { stuck_at; _ } ->
              (* The stuck node is the last path element and alive. *)
              stuck_at = List.nth path (List.length path - 1) && Overlay.Failure.get alive stuck_at)
        Rcm.Geometry.all_default)

(* Greedy ring routing never overshoots: remaining distance strictly
   decreases along the path. *)
let ring_distance_strictly_decreases =
  qcheck "ring routing strictly decreases remaining distance"
    QCheck2.Gen.(int_range 0 2_000)
    (fun seed ->
      let rng = rng_of_seed seed in
      let table = build ~seed Rcm.Geometry.Ring in
      let alive = Overlay.Failure.sample ~rng ~q:0.3 size in
      let pool = Overlay.Failure.survivors alive in
      Array.length pool < 2
      ||
      let src, dst = Stats.Sampler.ordered_pair rng pool in
      let _, path = Routing.Router.route_with_path table ~rng ~alive ~src ~dst in
      let rec decreasing = function
        | a :: (b :: _ as rest) ->
            Idspace.Id.ring_distance ~bits b dst < Idspace.Id.ring_distance ~bits a dst
            && decreasing rest
        | [ _ ] | [] -> true
      in
      decreasing path)

let routing_deterministic_given_seed =
  qcheck "routing is deterministic given the rng seed"
    QCheck2.Gen.(int_range 0 2_000)
    (fun seed ->
      let table = build ~seed Rcm.Geometry.Hypercube in
      let alive = Overlay.Failure.sample ~rng:(rng_of_seed (seed + 1)) ~q:0.3 size in
      let r1 =
        Routing.Router.route table ~rng:(rng_of_seed 7) ~alive ~src:0 ~dst:255
      in
      let r2 =
        Routing.Router.route table ~rng:(rng_of_seed 7) ~alive ~src:0 ~dst:255
      in
      Routing.Outcome.equal r1 r2)

let suite =
  [
    ("all pairs deliver at q=0", `Quick, test_all_pairs_deliver_without_failures);
    ("self route", `Quick, test_self_route_zero_hops);
    ("tree hops = hamming", `Quick, test_tree_hops_equal_hamming);
    ("hypercube hops = hamming", `Quick, test_hypercube_hops_equal_hamming);
    ("ring hops = popcount", `Quick, test_ring_hops_at_most_popcount);
    ("xor distance decreases", `Quick, test_xor_distance_decreases);
    ("route_with_path", `Quick, test_route_with_path);
    ("tree: dead neighbour drops", `Quick, test_tree_dead_neighbor_drops);
    ("hypercube: routes around failure", `Quick, test_hypercube_routes_around_failure);
    ("hypercube: drops when surrounded", `Quick, test_hypercube_drops_when_surrounded);
    ("ring: suboptimal progress preserved", `Quick, test_ring_suboptimal_progress);
    ("ring: successor fallback", `Quick, test_ring_successor_chain);
    ("symphony: delivers at q=0", `Quick, test_symphony_walks_ring);
    ("drop reports position", `Quick, test_dropped_messages_report_position);
    ("route guards", `Quick, test_route_guards);
    delivered_paths_are_alive;
    ring_distance_strictly_decreases;
    routing_deterministic_given_seed;
  ]
