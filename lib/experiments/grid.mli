(** Parameter grids shared by the figure-regeneration experiments. *)

val floats : lo:float -> hi:float -> steps:int -> float list
(** [steps] evenly spaced values from [lo] to [hi] inclusive. *)

val ints : lo:int -> hi:int -> int list

val fig6_q : float list
(** q = 0.00, 0.05, ..., 0.50 (the x-axis of Fig. 6). *)

val fig7a_q : float list
(** q = 0.00, 0.05, ..., 0.70 (the x-axis of Fig. 7(a)). *)

val fig7b_d : int list
(** d = 3 .. 40, i.e. N = 8 .. ~10^12 (the x-axis of Fig. 7(b)). *)
