(* The geometry registry: one descriptor per registered geometry
   family (the five built-ins plus plugins), enumerated — never
   pattern-matched — by the CLI, the bench, the docs checks and the
   test matrices. The descriptor is declarative: capability flags say
   which engines a family supports, and the conformance test
   (test_geom) checks the flags against the per-layer hook registries
   so a descriptor cannot overstate what its plugin registered.

   Registration order is preserved (built-ins first, then plugins in
   link order) so enumerated output is stable. *)

type t = {
  default : Rcm.Geometry.t;
  builtin : bool;
  example : string;
  degree : string;
  hops : string;
  analysis : bool;
  chain : bool;
  batch_block : bool;
  sparse : bool;
  churn : bool;
  session_churn : bool;
}

let registry : t list ref = ref []

let name d = Rcm.Geometry.name d.default

let register d =
  let n = name d in
  if List.exists (fun d' -> String.equal (name d') n) !registry then
    invalid_arg (Printf.sprintf "Geom.register: %S already registered" n);
  (if not d.builtin then
     match d.default with
     | Rcm.Geometry.Custom { family; _ } ->
         if Rcm.Geometry.find_family family = None then
           invalid_arg
             (Printf.sprintf
                "Geom.register: family %S is not registered with Rcm.Geometry" family)
     | _ -> invalid_arg "Geom.register: non-builtin descriptor must carry Custom");
  registry := !registry @ [ d ]

let all () = !registry

let find n =
  List.find_opt (fun d -> String.equal (name d) (String.lowercase_ascii n)) !registry

let names () = List.map name !registry

(* --- the five paper geometries -------------------------------------------- *)

let builtin default ~example ~degree ~hops ~batch_block ~sparse ~churn ~session_churn =
  {
    default;
    builtin = true;
    example;
    degree;
    hops;
    analysis = true;
    chain = true;
    batch_block;
    sparse;
    churn;
    session_churn;
  }

let () =
  register
    (builtin Rcm.Geometry.Tree ~example:"tree" ~degree:"d" ~hops:"O(log N)"
       ~batch_block:true ~sparse:true ~churn:false ~session_churn:true);
  register
    (builtin Rcm.Geometry.Hypercube ~example:"hypercube" ~degree:"d" ~hops:"O(log N)"
       ~batch_block:false ~sparse:false ~churn:false ~session_churn:true);
  register
    (builtin Rcm.Geometry.Xor ~example:"xor" ~degree:"d" ~hops:"O(log N)"
       ~batch_block:true ~sparse:true ~churn:true ~session_churn:true);
  register
    (builtin Rcm.Geometry.Ring ~example:"ring" ~degree:"d" ~hops:"O(log N)"
       ~batch_block:true ~sparse:true ~churn:true ~session_churn:true);
  register
    (builtin Rcm.Geometry.default_symphony ~example:"symphony" ~degree:"k_n + k_s"
       ~hops:"O(log^2 N)" ~batch_block:true ~sparse:true ~churn:true ~session_churn:true)
