type config = {
  bits : int;
  groups : int list;
  qs : float list;
  trials : int;
  pairs : int;
  seed : int;
}

(* A7: base-b digits at fixed N = 2^16: b = 2 (the paper's binary
   setting), b = 4 and b = 16 (Pastry's default). Higher bases shorten
   routes, which buys the tree geometry a lot of static resilience —
   at the cost of (b-1)·D routing entries. *)
let default_config =
  { bits = 16; groups = [ 1; 2; 4 ]; qs = Grid.fig6_q; trials = 3; pairs = 1_500; seed = 111 }

(* One (q, trial) grid point; the trial generator is derived by index
   from the master stream (the split-per-trial discipline, made
   index-addressable so trials parallelise deterministically). *)
let simulate_trial cfg ~mode ~group ~q build_seed =
  let style =
    match mode with
    | `Tree -> Overlay.Digit_table.Preserve_suffix
    | `Xor -> Overlay.Digit_table.Randomize_suffix
  in
  let trial_rng = Prng.Splitmix.of_int64 build_seed in
  let table = Overlay.Digit_table.build ~rng:trial_rng ~bits:cfg.bits ~group style in
  let alive =
    Overlay.Failure.sample ~rng:trial_rng ~q (Overlay.Digit_table.node_count table)
  in
  let pool = Overlay.Failure.survivors alive in
  if Array.length pool < 2 then (0, 0)
  else begin
    let delivered = ref 0 in
    for _ = 1 to cfg.pairs do
      let src, dst = Stats.Sampler.ordered_pair trial_rng pool in
      if Routing.Outcome.is_delivered (Routing.Digit_router.route ~mode table ~alive ~src ~dst)
      then incr delivered
    done;
    (!delivered, cfg.pairs)
  end

let trial_seeds cfg =
  let master = Prng.Splitmix.create ~seed:cfg.seed in
  Array.init cfg.trials (fun _ -> Prng.Splitmix.next_int64 master)

(* One simulated column over the q grid, flattened into |qs| × trials
   tasks (parallel under [pool]); per-q sums are reduced in trial
   order, so values are bit-identical to the sequential sweep. *)
let simulate_sweep ?pool cfg ~mode ~group qs =
  let seeds = trial_seeds cfg in
  let qarr = Array.of_list qs in
  let n = Array.length qarr * cfg.trials in
  let task k =
    simulate_trial cfg ~mode ~group ~q:qarr.(k / cfg.trials) seeds.(k mod cfg.trials)
  in
  let stats =
    match pool with
    | Some pool when Exec.Pool.size pool > 1 -> Exec.Pool.map pool n task
    | Some _ | None -> Array.init n task
  in
  Array.mapi
    (fun qi _ ->
      let delivered = ref 0 and attempted = ref 0 in
      for t = 0 to cfg.trials - 1 do
        let d, a = stats.((qi * cfg.trials) + t) in
        delivered := !delivered + d;
        attempted := !attempted + a
      done;
      if !attempted = 0 then 0.0 else float_of_int !delivered /. float_of_int !attempted)
    qarr

let simulate cfg ~mode ~group q = (simulate_sweep cfg ~mode ~group [ q ]).(0)

let label ~group suffix = Printf.sprintf "b=%d(%s)" (Idspace.Digit.base ~group) suffix

let tree_series ?pool cfg =
  Series.create
    ~title:
      (Printf.sprintf "A7 (tree): base-b Plaxton routability, N=2^%d — analysis vs simulation"
         cfg.bits)
    ~x_label:"q" ~x:(Array.of_list cfg.qs)
    (List.concat_map
       (fun group ->
         [
           Series.column ~label:(label ~group "ana")
             (Array.of_list
                (List.map (fun q -> Rcm.Digits.tree_routability ~d:cfg.bits ~q ~group) cfg.qs));
           Series.column ~label:(label ~group "sim")
             (simulate_sweep ?pool cfg ~mode:`Tree ~group cfg.qs);
         ])
       cfg.groups)

let xor_series ?pool cfg =
  Series.create
    ~title:
      (Printf.sprintf "A7 (xor): base-b Kademlia routability, N=2^%d — analysis vs simulation"
         cfg.bits)
    ~x_label:"q" ~x:(Array.of_list cfg.qs)
    (List.concat_map
       (fun group ->
         [
           Series.column ~label:(label ~group "ana")
             (Array.of_list
                (List.map (fun q -> Rcm.Digits.xor_routability ~d:cfg.bits ~q ~group) cfg.qs));
           Series.column ~label:(label ~group "sim")
             (simulate_sweep ?pool cfg ~mode:`Xor ~group cfg.qs);
         ])
       cfg.groups)

(* Shorter routes help: analytical routability is monotone in the digit
   width at every grid point (for the tree, where p = (1-q)^h). *)
let tree_monotone_in_base cfg =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  List.for_all
    (fun (small, large) ->
      List.for_all
        (fun q ->
          Rcm.Digits.tree_routability ~d:cfg.bits ~q ~group:large
          >= Rcm.Digits.tree_routability ~d:cfg.bits ~q ~group:small -. 1e-9)
        cfg.qs)
    (pairs cfg.groups)
