type record = {
  ts : float;
  kind : string;
  name : string;
  domain : int;
  dur_s : float option;
  attrs : (string * Tiny_json.t) list;
}

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

type load_result = { records : record list; skipped : int }

let record_of_json lineno json =
  let get name =
    match Tiny_json.member name json with
    | Some v -> v
    | None -> corrupt "line %d: missing field %S" lineno name
  in
  let str name =
    match Tiny_json.to_str (get name) with
    | Some s -> s
    | None -> corrupt "line %d: field %S: expected a string" lineno name
  in
  let num name =
    match Tiny_json.to_num (get name) with
    | Some v -> v
    | None -> corrupt "line %d: field %S: expected a number" lineno name
  in
  {
    ts = num "ts";
    kind = str "kind";
    name = str "name";
    domain =
      (match Tiny_json.to_int (get "domain") with
      | Some d -> d
      | None -> corrupt "line %d: field \"domain\": expected an integer" lineno);
    dur_s = Option.bind (Tiny_json.member "dur_s" json) Tiny_json.to_num;
    attrs =
      (match Tiny_json.member "attrs" json with
      | Some attrs -> (
          match Tiny_json.to_obj attrs with
          | Some fields -> fields
          | None -> corrupt "line %d: field \"attrs\": expected an object" lineno)
      | None -> []);
  }

let load ?(allow_partial = false) path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let records = ref [] in
      let skipped = ref 0 in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then
             match record_of_json !lineno (Tiny_json.parse line) with
             | record -> records := record :: !records
             | exception (Tiny_json.Error _ | Corrupt _) when allow_partial -> incr skipped
             | exception Tiny_json.Error msg -> corrupt "line %d: %s" !lineno msg
         done
       with End_of_file -> ());
      { records = List.rev !records; skipped = !skipped })

(* --- aggregation ----------------------------------------------------------- *)

type span_stats = {
  sp_count : int;
  sp_total_s : float;
  sp_min_s : float;
  sp_p50_s : float;
  sp_p99_s : float;
  sp_max_s : float;
}

type domain_stats = { dom_id : int; dom_spans : int; dom_busy_s : float }

type report = {
  total_records : int;
  span_records : int;
  event_records : int;
  heartbeats : int;
  wall_s : float;
  spans : (string * span_stats) list;
  domains : domain_stats list;
  imbalance : float option;
  hops : (string * (int * int) list) list;
  slowest : (float * record) list;
}

(* Nearest-rank quantile over an ascending array — exact, unlike the
   bucketed estimates in {!Metrics}, because the report tool has every
   sample in hand. *)
let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (q *. float_of_int n) in
    sorted.(if rank >= n then n - 1 else rank)
  end

let stats_of_durations durations =
  let sorted = Array.of_list durations in
  Array.sort compare sorted;
  let n = Array.length sorted in
  {
    sp_count = n;
    sp_total_s = Array.fold_left ( +. ) 0.0 sorted;
    sp_min_s = (if n = 0 then 0.0 else sorted.(0));
    sp_p50_s = quantile sorted 0.50;
    sp_p99_s = quantile sorted 0.99;
    sp_max_s = (if n = 0 then 0.0 else sorted.(n - 1));
  }

(* The "hops" attribute of estimate/trial events is a compact
   "hops:count,hops:count" string (see Sim.Estimate); tolerate and skip
   malformed fragments so one odd record cannot sink a whole report. *)
let parse_hops_attr s =
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.filter_map (fun pair ->
           match String.index_opt pair ':' with
           | None -> None
           | Some i -> (
               match
                 ( int_of_string_opt (String.sub pair 0 i),
                   int_of_string_opt (String.sub pair (i + 1) (String.length pair - i - 1)) )
               with
               | Some hops, Some count when hops >= 0 && count > 0 -> Some (hops, count)
               | _ -> None))

let analyze ?(top = 5) records =
  let by_name : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let by_domain : (int, int * float) Hashtbl.t = Hashtbl.create 8 in
  let by_geometry : (string, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let span_records = ref 0 in
  let event_records = ref 0 in
  let heartbeats = ref 0 in
  let first_ts = ref infinity in
  let last_ts = ref neg_infinity in
  let slowest = ref [] in
  List.iter
    (fun r ->
      if r.ts < !first_ts then first_ts := r.ts;
      if r.ts > !last_ts then last_ts := r.ts;
      if r.kind = "span" then begin
        incr span_records;
        let dur = Option.value ~default:0.0 r.dur_s in
        (match Hashtbl.find_opt by_name r.name with
        | Some durations -> durations := dur :: !durations
        | None -> Hashtbl.add by_name r.name (ref [ dur ]));
        let spans, busy =
          Option.value ~default:(0, 0.0) (Hashtbl.find_opt by_domain r.domain)
        in
        Hashtbl.replace by_domain r.domain (spans + 1, busy +. dur);
        slowest := (dur, r) :: !slowest
      end
      else begin
        incr event_records;
        if r.name = "heartbeat" then incr heartbeats;
        if r.name = "estimate/trial" then
          match
            ( Option.bind (List.assoc_opt "geometry" r.attrs) Tiny_json.to_str,
              Option.bind (List.assoc_opt "hops" r.attrs) Tiny_json.to_str )
          with
          | Some geometry, Some hops ->
              let table =
                match Hashtbl.find_opt by_geometry geometry with
                | Some t -> t
                | None ->
                    let t = Hashtbl.create 16 in
                    Hashtbl.add by_geometry geometry t;
                    t
              in
              List.iter
                (fun (h, c) ->
                  Hashtbl.replace table h
                    (c + Option.value ~default:0 (Hashtbl.find_opt table h)))
                (parse_hops_attr hops)
          | _ -> ()
      end)
    records;
  let spans =
    Hashtbl.fold (fun name durations acc -> (name, stats_of_durations !durations) :: acc)
      by_name []
    |> List.sort (fun (na, a) (nb, b) ->
           match compare b.sp_total_s a.sp_total_s with 0 -> compare na nb | c -> c)
  in
  let domains =
    Hashtbl.fold
      (fun dom_id (dom_spans, dom_busy_s) acc -> { dom_id; dom_spans; dom_busy_s } :: acc)
      by_domain []
    |> List.sort (fun a b -> compare a.dom_id b.dom_id)
  in
  let imbalance =
    match List.filter (fun d -> d.dom_spans > 0) domains with
    | [] -> None
    | busy ->
        let total = List.fold_left (fun acc d -> acc +. d.dom_busy_s) 0.0 busy in
        let mean = total /. float_of_int (List.length busy) in
        if mean <= 0.0 then None
        else
          Some
            (List.fold_left (fun acc d -> Float.max acc d.dom_busy_s) 0.0 busy /. mean)
  in
  let hops =
    Hashtbl.fold
      (fun geometry table acc ->
        let distribution =
          Hashtbl.fold (fun h c acc -> (h, c) :: acc) table []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        (geometry, distribution) :: acc)
      by_geometry []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let slowest =
    List.stable_sort (fun (a, _) (b, _) -> compare b a) (List.rev !slowest)
    |> List.filteri (fun i _ -> i < top)
  in
  {
    total_records = List.length records;
    span_records = !span_records;
    event_records = !event_records;
    heartbeats = !heartbeats;
    wall_s =
      (if Float.is_finite !first_ts && !last_ts >= !first_ts then !last_ts -. !first_ts
       else 0.0);
    spans;
    domains;
    imbalance;
    hops;
    slowest;
  }

let pp_report ppf r =
  Format.fprintf ppf "==== trace ====@\n";
  Format.fprintf ppf "records %d (spans %d, events %d, heartbeats %d), domains %d, wall %.3f s@\n"
    r.total_records r.span_records r.event_records r.heartbeats (List.length r.domains)
    r.wall_s;
  Format.fprintf ppf "==== spans ====@\n";
  if r.spans = [] then Format.fprintf ppf "(no spans)@\n"
  else begin
    Format.fprintf ppf "%-34s %8s %12s %12s %12s %12s@\n" "name" "count" "total_s" "p50_s"
      "p99_s" "max_s";
    List.iter
      (fun (name, s) ->
        Format.fprintf ppf "%-34s %8d %12.6f %12.6f %12.6f %12.6f@\n" name s.sp_count
          s.sp_total_s s.sp_p50_s s.sp_p99_s s.sp_max_s)
      r.spans
  end;
  Format.fprintf ppf "==== domains ====@\n";
  if r.domains = [] then Format.fprintf ppf "(no domain activity)@\n"
  else begin
    Format.fprintf ppf "%8s %8s %12s %12s@\n" "domain" "spans" "busy_s" "utilisation";
    List.iter
      (fun d ->
        let utilisation =
          if r.wall_s > 0.0 then
            Printf.sprintf "%.1f%%" (100.0 *. d.dom_busy_s /. r.wall_s)
          else "-"
        in
        Format.fprintf ppf "%8d %8d %12.6f %12s@\n" d.dom_id d.dom_spans d.dom_busy_s
          utilisation)
      r.domains;
    match r.imbalance with
    | Some ratio ->
        Format.fprintf ppf "imbalance (max busy / mean busy) %.2f@\n" ratio
    | None -> ()
  end;
  Format.fprintf ppf "==== hops (per geometry) ====@\n";
  if r.hops = [] then
    Format.fprintf ppf "(no estimate/trial events with hop data)@\n"
  else
    List.iter
      (fun (geometry, distribution) ->
        let deliveries = List.fold_left (fun acc (_, c) -> acc + c) 0 distribution in
        let weighted =
          List.fold_left (fun acc (h, c) -> acc +. float_of_int (h * c)) 0.0 distribution
        in
        Format.fprintf ppf "%-10s deliveries %d, mean %.2f |" geometry deliveries
          (if deliveries = 0 then 0.0 else weighted /. float_of_int deliveries);
        List.iter (fun (h, c) -> Format.fprintf ppf " %d:%d" h c) distribution;
        Format.fprintf ppf "@\n")
      r.hops;
  Format.fprintf ppf "==== slowest spans ====@\n";
  if r.slowest = [] then Format.fprintf ppf "(no spans)@\n"
  else
    List.iteri
      (fun i (dur, record) ->
        Format.fprintf ppf "%2d  %10.6f s  %-30s (domain %d)@\n" (i + 1) dur record.name
          record.domain)
      r.slowest

(* --- Chrome trace-event export --------------------------------------------- *)

let export_chrome records oc =
  (* Rebase to the earliest span *start* so no event sits at a negative
     timestamp ([ts] in our schema is stamped when a span ends). *)
  let origin =
    List.fold_left
      (fun acc r -> Float.min acc (r.ts -. Option.value ~default:0.0 r.dur_s))
      infinity records
  in
  let origin = if Float.is_finite origin then origin else 0.0 in
  (* A non-finite ts/dur (a corrupt or hand-edited trace parses "1e999"
     to infinity) must not leak into the output as the bare token "inf"
     / "nan" — that is not JSON. Serialize it as null, exactly like the
     metrics sink and Tiny_json do for non-finite numbers. *)
  let micros v =
    let us = 1e6 *. v in
    if Float.is_finite us then Printf.sprintf "%.3f" us else "null"
  in
  output_string oc "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  List.iteri
    (fun i r ->
      if i > 0 then output_string oc ",";
      output_string oc "\n  ";
      let buffer = Buffer.create 160 in
      Buffer.add_char buffer '{';
      Buffer.add_string buffer
        (Printf.sprintf "\"name\": %s, \"cat\": %S, \"pid\": 1, \"tid\": %d"
           (Tiny_json.to_string (Tiny_json.Str r.name))
           r.kind r.domain);
      (match (r.kind, r.dur_s) with
      | "span", Some dur ->
          Buffer.add_string buffer
            (Printf.sprintf ", \"ph\": \"X\", \"ts\": %s, \"dur\": %s"
               (micros (r.ts -. dur -. origin))
               (micros dur))
      | "span", None ->
          Buffer.add_string buffer
            (Printf.sprintf ", \"ph\": \"X\", \"ts\": %s, \"dur\": 0" (micros (r.ts -. origin)))
      | _ ->
          Buffer.add_string buffer
            (Printf.sprintf ", \"ph\": \"i\", \"s\": \"t\", \"ts\": %s" (micros (r.ts -. origin))));
      if r.attrs <> [] then begin
        Buffer.add_string buffer ", \"args\": ";
        Buffer.add_string buffer (Tiny_json.to_string (Tiny_json.Obj r.attrs))
      end;
      Buffer.add_char buffer '}';
      Buffer.output_buffer oc buffer)
    records;
  output_string oc "\n]}\n"
