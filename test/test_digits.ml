open Helpers

(* --- Idspace.Digit ----------------------------------------------------------- *)

let bits = 8

let test_digit_get_set () =
  (* 0xA5 = 1010_0101; with group = 4 the digits are 0xA and 0x5. *)
  Alcotest.(check int) "digit 1" 0xA (Idspace.Digit.get ~bits ~group:4 0xA5 1);
  Alcotest.(check int) "digit 2" 0x5 (Idspace.Digit.get ~bits ~group:4 0xA5 2);
  Alcotest.(check int) "set digit 1" 0x35 (Idspace.Digit.set ~bits ~group:4 0xA5 1 0x3);
  Alcotest.(check int) "set digit 2" 0xAC (Idspace.Digit.set ~bits ~group:4 0xA5 2 0xC)

let test_digit_group1_is_bits () =
  for id = 0 to 255 do
    for level = 1 to 8 do
      Alcotest.(check bool) "bit view" (Idspace.Id.get_bit ~bits id level)
        (Idspace.Digit.get ~bits ~group:1 id level = 1)
    done
  done

let test_digit_guards () =
  Alcotest.(check bool) "group must divide" true
    (try
       ignore (Idspace.Digit.count ~bits ~group:3);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "value outside base" true
    (try
       ignore (Idspace.Digit.set ~bits ~group:4 0 1 16);
       false
     with Invalid_argument _ -> true)

let test_digit_distance () =
  Alcotest.(check int) "same" 0 (Idspace.Digit.distance ~bits ~group:4 0xA5 0xA5);
  Alcotest.(check int) "one digit" 1 (Idspace.Digit.distance ~bits ~group:4 0xA5 0xA7);
  Alcotest.(check int) "two digits" 2 (Idspace.Digit.distance ~bits ~group:4 0xA5 0x57);
  Alcotest.(check (option int)) "leading" (Some 1)
    (Idspace.Digit.highest_differing ~bits ~group:4 0xA5 0x57);
  Alcotest.(check int) "prefix" 1 (Idspace.Digit.common_prefix ~bits ~group:4 0xA5 0xA7)

let digit_set_get_roundtrip =
  qcheck "set/get digit roundtrip"
    QCheck2.Gen.(triple (int_range 0 255) (int_range 1 2) (int_range 0 15))
    (fun (id, level, value) ->
      Idspace.Digit.get ~bits ~group:4 (Idspace.Digit.set ~bits ~group:4 id level value) level
      = value)

let digit_distance_vs_bit_distance =
  qcheck "digit distance <= hamming distance <= group * digit distance"
    QCheck2.Gen.(pair (int_range 0 255) (int_range 0 255))
    (fun (a, b) ->
      let dd = Idspace.Digit.distance ~bits ~group:4 a b in
      let hd = Idspace.Id.hamming_distance a b in
      dd <= hd && hd <= 4 * dd)

(* --- Rcm.Digits ----------------------------------------------------------------- *)

let test_digits_population_sums () =
  (* sum_h C(D,h)(b-1)^h = 2^d - 1 for every base. *)
  List.iter
    (fun group ->
      check_loose
        ~msg:(Printf.sprintf "group %d" group)
        (Float.pow 2.0 12.0 -. 1.0)
        (Rcm.Engine.total_population (Rcm.Digits.tree_spec ~group) ~d:12))
    [ 1; 2; 3; 4; 6 ]

let test_digits_reduce_to_binary () =
  List.iter
    (fun q ->
      check_close ~msg:"tree" (Rcm.Tree.routability ~d:12 ~q)
        (Rcm.Digits.tree_routability ~d:12 ~q ~group:1);
      check_close ~msg:"xor"
        (Rcm.Model.routability Rcm.Geometry.Xor ~d:12 ~q)
        (Rcm.Digits.xor_routability ~d:12 ~q ~group:1))
    [ 0.1; 0.3; 0.6 ]

let test_digits_group_must_divide () =
  Alcotest.(check bool) "guard" true
    (try
       ignore (Rcm.Digits.tree_routability ~d:10 ~q:0.1 ~group:3);
       false
     with Invalid_argument _ -> true)

let test_digits_table_entries () =
  Alcotest.(check int) "b=2" 16 (Rcm.Digits.table_entries ~d:16 ~group:1);
  Alcotest.(check int) "b=4" 24 (Rcm.Digits.table_entries ~d:16 ~group:2);
  Alcotest.(check int) "b=16" 60 (Rcm.Digits.table_entries ~d:16 ~group:4)

let base_helps_tree =
  qcheck "wider digits never hurt the tree"
    QCheck2.Gen.(pair small_prob_gen (int_range 1 2))
    (fun (q, group) ->
      Rcm.Digits.tree_routability ~d:12 ~q ~group:(group * 2)
      >= Rcm.Digits.tree_routability ~d:12 ~q ~group -. 1e-9)

(* --- Digit tables and routing ------------------------------------------------- *)

let table_bits = 8

let build ?(seed = 61) ~group style =
  Overlay.Digit_table.build ~rng:(rng_of_seed seed) ~bits:table_bits ~group style

let test_table_shape () =
  let t = build ~group:2 Overlay.Digit_table.Preserve_suffix in
  Alcotest.(check int) "levels" 4 (Overlay.Digit_table.levels t);
  Alcotest.(check int) "base" 4 (Overlay.Digit_table.base t);
  Alcotest.(check int) "degree" 12 (Overlay.Digit_table.degree t)

let test_table_contacts_preserve () =
  let group = 2 in
  let t = build ~group Overlay.Digit_table.Preserve_suffix in
  for v = 0 to 255 do
    for level = 1 to Overlay.Digit_table.levels t do
      let own = Idspace.Digit.get ~bits:table_bits ~group v level in
      for digit = 0 to 3 do
        if digit <> own then begin
          let c = Overlay.Digit_table.neighbor t v ~level ~digit in
          Alcotest.(check int) "exactly one digit changed"
            (Idspace.Digit.set ~bits:table_bits ~group v level digit)
            c
        end
      done
    done
  done

let test_table_contacts_randomized () =
  let group = 2 in
  let t = build ~group Overlay.Digit_table.Randomize_suffix in
  for v = 0 to 255 do
    for level = 1 to Overlay.Digit_table.levels t do
      let own = Idspace.Digit.get ~bits:table_bits ~group v level in
      for digit = 0 to 3 do
        if digit <> own then begin
          let c = Overlay.Digit_table.neighbor t v ~level ~digit in
          Alcotest.(check bool) "prefix preserved" true
            (Idspace.Digit.common_prefix ~bits:table_bits ~group v c >= level - 1);
          Alcotest.(check int) "target digit set" digit
            (Idspace.Digit.get ~bits:table_bits ~group c level)
        end
      done
    done
  done

let all_alive = Overlay.Failure.none 256

let test_digit_routing_q0 () =
  List.iter
    (fun (style, mode) ->
      let t = build ~group:2 style in
      let drops = ref 0 in
      for src = 0 to 255 do
        let dst = (src + 131) land 255 in
        if dst <> src then
          if
            not
              (Routing.Outcome.is_delivered
                 (Routing.Digit_router.route ~mode t ~alive:all_alive ~src ~dst))
          then incr drops
      done;
      Alcotest.(check int) "no drops" 0 !drops)
    [ (Overlay.Digit_table.Preserve_suffix, `Tree); (Overlay.Digit_table.Randomize_suffix, `Xor) ]

let test_digit_tree_hops_equal_digit_distance () =
  let group = 2 in
  let t = build ~group Overlay.Digit_table.Preserve_suffix in
  for src = 0 to 63 do
    let dst = (src * 29 + 17) land 255 in
    if dst <> src then
      match Routing.Digit_router.route ~mode:`Tree t ~alive:all_alive ~src ~dst with
      | Routing.Outcome.Delivered { hops } ->
          Alcotest.(check int) "hops = digit distance"
            (Idspace.Digit.distance ~bits:table_bits ~group src dst)
            hops
      | Routing.Outcome.Dropped _ -> Alcotest.fail "dropped at q=0"
  done

let test_a7_simulation_tracks_analysis () =
  let cfg =
    { Experiments.Base_sweep.default_config with
      bits = 10; groups = [ 1; 2 ]; qs = [ 0.2 ]; trials = 4; pairs = 3_000 }
  in
  List.iter
    (fun group ->
      let sim = Experiments.Base_sweep.simulate cfg ~mode:`Tree ~group 0.2 in
      let ana = Rcm.Digits.tree_routability ~d:10 ~q:0.2 ~group in
      if Float.abs (sim -. ana) > 0.03 then
        Alcotest.failf "group %d: sim %.4f vs ana %.4f" group sim ana)
    cfg.Experiments.Base_sweep.groups

let test_a7_monotone () =
  Alcotest.(check bool) "tree monotone in base" true
    (Experiments.Base_sweep.tree_monotone_in_base
       { Experiments.Base_sweep.default_config with bits = 12 })

let suite =
  [
    ("digit get/set", `Quick, test_digit_get_set);
    ("digit group=1 is bits", `Quick, test_digit_group1_is_bits);
    ("digit guards", `Quick, test_digit_guards);
    ("digit distance", `Quick, test_digit_distance);
    digit_set_get_roundtrip;
    digit_distance_vs_bit_distance;
    ("population sums to N-1 for all bases", `Quick, test_digits_population_sums);
    ("reduces to binary at group=1", `Quick, test_digits_reduce_to_binary);
    ("group must divide d", `Quick, test_digits_group_must_divide);
    ("table entry counts", `Quick, test_digits_table_entries);
    base_helps_tree;
    ("digit table shape", `Quick, test_table_shape);
    ("preserve-suffix contacts", `Quick, test_table_contacts_preserve);
    ("randomized contacts", `Quick, test_table_contacts_randomized);
    ("digit routing at q=0", `Quick, test_digit_routing_q0);
    ("digit tree hops = digit distance", `Quick, test_digit_tree_hops_equal_digit_distance);
    ("A7 simulation tracks analysis", `Slow, test_a7_simulation_tracks_analysis);
    ("A7 monotone in base", `Quick, test_a7_monotone);
  ]
