#!/usr/bin/env sh
# Chaos smoke: prove the fault-tolerant harness end to end.
#
#   1. Baseline --smoke sweep with deterministic fault injection.
#   2. The same sweep, checkpointed, interrupted with SIGINT mid-run:
#      must exit 130 (or finish with 0 if the machine outran the kill)
#      and leave a loadable checkpoint, never a .tmp turd.
#   3. --resume from whatever the interrupted run left behind: stdout
#      must be byte-identical to the uninterrupted baseline.
#   4. Deterministic mid-state resume: truncate the completed
#      checkpoint to its first half and resume from that — covers the
#      partial-resume path even when step 2's signal lost the race.
#
# The interrupted and resumed runs also write --manifest/--metrics-out
# telemetry: both files must exist afterwards (even after SIGINT),
# leave no .tmp turds, and pass bench/validate.exe's schema and
# checksum checks — while stdout stays byte-identical to the
# observability-free baseline.
#
# Usage: scripts/chaos_smoke.sh [path-to-dhtlab] [path-to-validate]
# CHAOS_WORK, when set, names the work directory to use (and keep):
# CI points it somewhere uploadable so a failure leaves the artefacts
# behind for inspection. Exits non-zero on the first violated invariant.

set -eu

DHTLAB=${1:-_build/default/bin/dhtlab.exe}
VALIDATE=${2:-_build/default/bench/validate.exe}
if [ -n "${CHAOS_WORK:-}" ]; then
    WORK=$CHAOS_WORK
    mkdir -p "$WORK"
else
    WORK=$(mktemp -d "${TMPDIR:-/tmp}/chaos_smoke.XXXXXX")
    trap 'rm -rf "$WORK"' EXIT INT TERM
fi

# One flag set everywhere: outputs must be comparable byte-for-byte.
ARGS="simulate --smoke -g xor --seed 7 --jobs 2 --trial-retries 1 --inject-fault trial:0.2:9"

fail() {
    echo "chaos-smoke: FAIL: $1" >&2
    exit 1
}

echo "chaos-smoke: 1/5 baseline sweep (faults + retries)"
$DHTLAB $ARGS > "$WORK/baseline.txt"

echo "chaos-smoke: 2/5 checkpointed run interrupted by SIGINT"
$DHTLAB $ARGS --checkpoint "$WORK/ck.jsonl" --checkpoint-every 2 \
    --manifest "$WORK/int.manifest.json" --metrics-out "$WORK/int.metrics.json" \
    > "$WORK/interrupted.txt" 2> "$WORK/interrupted.err" &
PID=$!
# Land the signal mid-sweep if we can; a fast machine may legitimately
# finish first, which step 4 compensates for.
sleep 0.3
kill -INT "$PID" 2>/dev/null || true
STATUS=0
wait "$PID" || STATUS=$?
case "$STATUS" in
    130) echo "chaos-smoke:     interrupted (exit 130), checkpoint flushed" ;;
    0)   echo "chaos-smoke:     run outran the signal (exit 0); resume still covered below" ;;
    *)   fail "interrupted run exited $STATUS (expected 130 or 0)" ;;
esac
[ -e "$WORK/ck.jsonl" ] || fail "no checkpoint file after interruption"
[ -e "$WORK/ck.jsonl.tmp" ] && fail "atomic write left ck.jsonl.tmp behind"
# Even a SIGINT'ed run must leave complete, schema-valid telemetry
# whose recorded checksums match what is on disk right now.
[ -e "$WORK/int.manifest.json" ] || fail "no manifest after interruption"
[ -e "$WORK/int.metrics.json" ] || fail "no metrics snapshot after interruption"
[ -e "$WORK/int.manifest.json.tmp" ] && fail "atomic write left int.manifest.json.tmp behind"
[ -e "$WORK/int.metrics.json.tmp" ] && fail "atomic write left int.metrics.json.tmp behind"
$VALIDATE --manifest "$WORK/int.manifest.json" \
    || fail "interrupted run's manifest failed validation"
$VALIDATE --metrics "$WORK/int.metrics.json" \
    || fail "interrupted run's metrics snapshot failed validation"
if [ "$STATUS" = 130 ]; then
    grep -q '"exit_status": 130' "$WORK/int.manifest.json" \
        || fail "interrupted manifest does not record exit_status 130"
fi

echo "chaos-smoke: 3/5 resume and diff against the baseline"
$DHTLAB $ARGS --checkpoint "$WORK/ck.jsonl" --resume \
    --manifest "$WORK/res.manifest.json" --metrics-out "$WORK/res.metrics.json" \
    > "$WORK/resumed.txt"
diff "$WORK/baseline.txt" "$WORK/resumed.txt" \
    || fail "resumed stdout differs from the uninterrupted baseline"
$VALIDATE --manifest "$WORK/res.manifest.json" \
    || fail "resumed run's manifest failed validation"
$VALIDATE --metrics "$WORK/res.metrics.json" \
    || fail "resumed run's metrics snapshot failed validation"
grep -q '"exit_status": 0' "$WORK/res.manifest.json" \
    || fail "resumed manifest does not record exit_status 0"

echo "chaos-smoke: 4/5 deterministic mid-state resume from a truncated checkpoint"
TOTAL=$(wc -l < "$WORK/ck.jsonl")
head -n $((TOTAL / 2)) "$WORK/ck.jsonl" > "$WORK/ck_half.jsonl"
$DHTLAB $ARGS --checkpoint "$WORK/ck_half.jsonl" --resume > "$WORK/resumed_half.txt"
diff "$WORK/baseline.txt" "$WORK/resumed_half.txt" \
    || fail "half-checkpoint resume differs from the baseline"
diff "$WORK/ck.jsonl" "$WORK/ck_half.jsonl" \
    || fail "resumed checkpoint file differs from the complete one"

echo "chaos-smoke: 5/5 heavier sweep so the signal reliably lands mid-run"
HEAVY="simulate -g xor -d 12 --trials 6 --pairs 15000 --seed 7 --jobs 2"
$DHTLAB $HEAVY > "$WORK/heavy_baseline.txt"
$DHTLAB $HEAVY --checkpoint "$WORK/heavy.jsonl" --checkpoint-every 2 \
    > "$WORK/heavy_int.txt" 2> "$WORK/heavy_int.err" &
PID=$!
sleep 0.5
kill -INT "$PID" 2>/dev/null || true
STATUS=0
wait "$PID" || STATUS=$?
case "$STATUS" in
    130)
        echo "chaos-smoke:     interrupted (exit 130)"
        grep -q "interrupted" "$WORK/heavy_int.err" \
            || fail "exit 130 without the interrupted message on stderr"
        ;;
    0)   echo "chaos-smoke:     heavy run still outran the signal; resume checked anyway" ;;
    *)   fail "heavy interrupted run exited $STATUS (expected 130 or 0)" ;;
esac
$DHTLAB $HEAVY --checkpoint "$WORK/heavy.jsonl" --resume > "$WORK/heavy_resumed.txt"
diff "$WORK/heavy_baseline.txt" "$WORK/heavy_resumed.txt" \
    || fail "heavy resumed stdout differs from the uninterrupted baseline"

echo "chaos-smoke: OK (interrupt, resume and mid-state resume all byte-identical)"
