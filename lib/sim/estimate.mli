(** Monte-Carlo estimation of routability under the static-resilience
    failure model — the simulation half of the paper's Fig. 6
    comparison. *)

type config = {
  geometry : Rcm.Geometry.t;
  bits : int;  (** identifier length d; N = 2^bits nodes *)
  q : float;  (** uniform node failure probability *)
  trials : int;  (** independent overlay + failure samples *)
  pairs_per_trial : int;  (** routed source/destination samples per trial *)
  seed : int;
}

type result = {
  config : config;
  delivered : int;
  attempted : int;
  ci : Stats.Binomial_ci.t option;
      (** Routability estimate with 95% CI. [None] when no pair was
          ever attempted — every trial left fewer than two survivors —
          in which case there is no estimate at all, as opposed to an
          estimate of zero (a fabricated 0/1 interval would present
          "no data" as certainty). *)
  hop_summary : Stats.Summary.t;  (** hop counts of delivered messages *)
  mean_alive_fraction : float;
      (** Mean over surviving trials; [nan] when every trial failed. *)
  failed_trials : int;
      (** Trials that exhausted their retries under supervision (see
          {!run_sweep}). The estimate covers the surviving trials only,
          so the CI widens honestly with the lost sample size; always 0
          on the unsupervised path, where a trial exception aborts the
          sweep instead. *)
}

val config :
  ?trials:int ->
  ?pairs_per_trial:int ->
  ?seed:int ->
  bits:int ->
  q:float ->
  Rcm.Geometry.t ->
  config
(** @raise Invalid_argument on non-positive counts or invalid [q]. *)

val run :
  ?pool:Exec.Pool.t ->
  ?cache:Overlay.Table_cache.t ->
  ?backend:Overlay.Table.backend ->
  config ->
  result
(** Deterministic in [config.seed] alone: trial [i] always runs on the
    generator seeded by the [i]-th output of the master stream, and
    trial contributions are reduced in index order, so the result is
    bit-identical for every [pool] size (including no pool — the
    sequential path), with or without [cache], and for either overlay
    [backend] (default [Classic]; [Flat] stores the overlay as a shared
    read-only struct-of-arrays block — see {!Overlay.Flat} — which is
    what large [bits] runs need). [pool] distributes trials across
    domains; [cache] reuses overlay tables across calls that share
    trial seeds (e.g. a q-sweep). *)

val run_sweep :
  ?pool:Exec.Pool.t ->
  ?cache:Overlay.Table_cache.t ->
  ?backend:Overlay.Table.backend ->
  ?supervise:bool ->
  ?retries:int ->
  ?fault:Exec.Fault.t ->
  ?checkpoint:Checkpoint.t ->
  config ->
  float list ->
  (float * result) list
(** [run_sweep cfg qs] is [[(q, run { cfg with q }) | q <- qs]],
    bit-identical to those per-point runs, but flattened into
    [|qs| × trials] independent tasks so the whole grid parallelises
    at once, and — because trial seeds do not depend on [q] — paying
    [trials] overlay builds for the whole sweep when a [cache] is
    supplied instead of [|qs| × trials].

    Supervision. When [supervise] is set (or implied by [retries > 0],
    [fault] or [checkpoint]), trials run under
    {!Exec.Pool.supervised}: a trial exception is retried up to
    [retries] times — the retry re-derives its PRNG stream from the
    trial index, so a transient fault replays bit-identically — then
    recorded as failed, surfacing in {!result.failed_trials} instead
    of aborting the sweep. [fault] injects deterministic trial
    failures before the trial touches its PRNG (testing/chaos only).
    [checkpoint] consults the store before each trial and records each
    outcome after it, flushing before return; a resumed sweep replays
    stored trials and produces byte-identical results to an
    uninterrupted one. On cooperative cancellation
    ({!Exec.Cancel.requested}) the sweep flushes the checkpoint and
    raises {!Exec.Cancel.Cancelled} rather than returning partial
    per-q results.

    Without any of these options the historical fast path runs: trial
    exceptions propagate and abort the sweep.
    @raise Invalid_argument if any [q] is not a probability or
    [retries < 0].
    @raise Exec.Cancel.Cancelled when cancellation was requested. *)

val routability : result -> float
(** Point estimate, or [nan] when [ci = None] (no routable pairs to
    measure). [nan] propagates honestly into tables and CSV exports
    (rendered as ["nan"]) rather than masquerading as 0 or 1. *)

val failed_percent : result -> float
(** [100 * (1 - routability)]; [nan] when there is no estimate. *)

val pp_result : Format.formatter -> result -> unit
(** Human-readable one-liner; appends ["[k/n trials failed]"] whenever
    supervision recorded failures, so a degraded estimate is never
    silently presented as a full-sample one. *)

val csv_header : string
(** Column names matching {!to_csv_row}. *)

val to_csv_row : result -> string
(** One CSV row (no trailing newline). Missing estimates render as
    ["nan"]. *)

val to_json : result -> string
(** One JSON object (no trailing newline). Missing estimates render as
    [null]. *)
