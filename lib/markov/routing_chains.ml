type routing = { chain : Chain.t; success : int; failure : int }

let success_probability r = Chain.absorption_probability r.chain ~into:r.success

let failure_probability r = Chain.absorption_probability r.chain ~into:r.failure

let expected_hops r = Chain.expected_steps r.chain

let expected_hops_given_success r = Chain.expected_steps_given r.chain ~into:r.success

(* pmf of the hop count of delivered messages: the absorption-time
   distribution into the success state, renormalised by p(h,q). *)
let hop_distribution_given_success r =
  let pmf = Chain.absorption_time_distribution r.chain ~into:r.success in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  if total <= 0.0 then [||] else Array.map (fun p -> p /. total) pmf

let check_common ~fn ~h ~q =
  if h < 1 then invalid_arg (fn ^ ": need at least one hop");
  if not (Numerics.Prob.is_valid q) then invalid_arg (fn ^ ": invalid failure probability")

(* Fig. 4(a): a straight line of states; every hop needs the single
   neighbour correcting the leftmost differing bit. *)
let tree ~h ~q =
  check_common ~fn:"Routing_chains.tree" ~h ~q;
  let success = h and failure = h + 1 in
  let edges = ref [] in
  for i = 0 to h - 1 do
    edges := (i, i + 1, 1.0 -. q) :: (i, failure, q) :: !edges
  done;
  { chain = Chain.create ~num_states:(h + 2) ~start:0 ~edges:!edges; success; failure }

(* Fig. 4(b): at state i (i bits already corrected) there are h - i
   neighbours that make progress; routing fails only when all are dead. *)
let hypercube ~h ~q =
  check_common ~fn:"Routing_chains.hypercube" ~h ~q;
  let success = h and failure = h + 1 in
  let edges = ref [] in
  for i = 0 to h - 1 do
    let all_dead = Numerics.Prob.pow q (h - i) in
    edges := (i, i + 1, 1.0 -. all_dead) :: (i, failure, all_dead) :: !edges
  done;
  { chain = Chain.create ~num_states:(h + 2) ~start:0 ~edges:!edges; success; failure }

(* Fig. 5(b): states (i, k) = i phases advanced, k suboptimal hops taken
   inside the current phase. With m = h - i bits still unresolved and k
   of the low-order ones already corrected: the optimal neighbour is
   alive with probability 1 - q, all m - k useful neighbours are dead
   with probability q^(m-k), and otherwise a lower-order bit is corrected. *)
let xor ~h ~q =
  check_common ~fn:"Routing_chains.xor" ~h ~q;
  let offsets = Array.make (h + 1) 0 in
  for i = 1 to h do
    (* Phase i has h - i substates... computed as running total below. *)
    offsets.(i) <- offsets.(i - 1) + (h - (i - 1))
  done;
  let success = offsets.(h) in
  let failure = success + 1 in
  let edges = ref [] in
  for i = 0 to h - 1 do
    let m = h - i in
    let next_phase = if i + 1 = h then success else offsets.(i + 1) in
    for k = 0 to m - 1 do
      let src = offsets.(i) + k in
      edges := (src, next_phase, 1.0 -. q) :: !edges;
      edges := (src, failure, Numerics.Prob.pow q (m - k)) :: !edges;
      if k < m - 1 then begin
        let suboptimal = q *. Numerics.Prob.at_least_one_of ~q ~count:(m - 1 - k) in
        edges := (src, src + 1, suboptimal) :: !edges
      end
    done
  done;
  {
    chain = Chain.create ~num_states:(failure + 1) ~start:0 ~edges:!edges;
    success;
    failure;
  }

let ring_max_phases = 22

(* Fig. 8(a): like XOR but suboptimal hops do not consume progress
   choices — the failure probability stays q^m and the suboptimal-hop
   probability stays q(1 - q^(m-1)) throughout a phase, and up to
   2^(m-1) suboptimal hops may be taken (after which the next hop
   necessarily completes the phase). *)
let ring ~h ~q =
  check_common ~fn:"Routing_chains.ring" ~h ~q;
  if h > ring_max_phases then
    invalid_arg
      (Printf.sprintf "Routing_chains.ring: phase count %d needs 2^%d states" h (h - 1));
  let offsets = Array.make (h + 1) 0 in
  for i = 1 to h do
    offsets.(i) <- offsets.(i - 1) + (1 lsl (h - i))
  done;
  let success = offsets.(h) in
  let failure = success + 1 in
  let edges = ref [] in
  for i = 0 to h - 1 do
    let m = h - i in
    let substates = 1 lsl (m - 1) in
    let next_phase = if i + 1 = h then success else offsets.(i + 1) in
    let fail = Numerics.Prob.pow q m in
    let suboptimal = q *. Numerics.Prob.at_least_one_of ~q ~count:(m - 1) in
    for k = 0 to substates - 1 do
      let src = offsets.(i) + k in
      edges := (src, next_phase, 1.0 -. q) :: !edges;
      edges := (src, failure, fail) :: !edges;
      if suboptimal > 0.0 then begin
        let subopt_target = if k < substates - 1 then src + 1 else next_phase in
        edges := (src, subopt_target, suboptimal) :: !edges
      end
    done
  done;
  {
    chain = Chain.create ~num_states:(failure + 1) ~start:0 ~edges:!edges;
    success;
    failure;
  }

let symphony_suboptimal_cap ~d ~q = int_of_float (Float.ceil (float_of_int d /. (1.0 -. q)))

(* Fig. 8(b): every hop either lands a shortcut in the desired phase
   (probability k_s/d), loses all k_n + k_s connections (probability
   q^(k_n+k_s)), or takes a suboptimal hop; the number of suboptimal hops
   per phase is capped at ceil(d / (1-q)). *)
let symphony ~d ~phases ~q ~k_n ~k_s =
  check_common ~fn:"Routing_chains.symphony" ~h:phases ~q;
  if d < 1 then invalid_arg "Routing_chains.symphony: d < 1";
  if k_n < 0 || k_s < 1 then invalid_arg "Routing_chains.symphony: need k_s >= 1, k_n >= 0";
  if q >= 1.0 then invalid_arg "Routing_chains.symphony: q must be < 1";
  let advance = float_of_int k_s /. float_of_int d in
  let fail = Numerics.Prob.pow q (k_n + k_s) in
  if advance +. fail > 1.0 then
    invalid_arg "Routing_chains.symphony: k_s/d + q^(k_n+k_s) exceeds 1 (model domain)";
  let suboptimal = 1.0 -. advance -. fail in
  let cap = symphony_suboptimal_cap ~d ~q in
  let per_phase = cap + 1 in
  let success = phases * per_phase in
  let failure = success + 1 in
  let edges = ref [] in
  for i = 0 to phases - 1 do
    let next_phase = if i + 1 = phases then success else (i + 1) * per_phase in
    for j = 0 to cap do
      let src = (i * per_phase) + j in
      edges := (src, next_phase, advance) :: !edges;
      edges := (src, failure, fail) :: !edges;
      if suboptimal > 0.0 then begin
        let subopt_target = if j < cap then src + 1 else next_phase in
        edges := (src, subopt_target, suboptimal) :: !edges
      end
    done
  done;
  {
    chain = Chain.create ~num_states:(failure + 1) ~start:0 ~edges:!edges;
    success;
    failure;
  }
