let route ?on_hop table ~rng ~alive ~src ~dst =
  let space = Overlay.Table.space table in
  Idspace.Space.check space src;
  Idspace.Space.check space dst;
  match Overlay.Table.geometry table with
  | Rcm.Geometry.Tree -> Tree_router.route ?on_hop table ~alive ~src ~dst
  | Rcm.Geometry.Hypercube -> Hypercube_router.route ?on_hop table ~rng ~alive ~src ~dst
  | Rcm.Geometry.Xor -> Xor_router.route ?on_hop table ~alive ~src ~dst
  | Rcm.Geometry.Ring | Rcm.Geometry.Symphony _ ->
      Greedy_ring.route ?on_hop table ~alive ~src ~dst

let route_with_path table ~rng ~alive ~src ~dst =
  let visited = ref [ src ] in
  let outcome = route ~on_hop:(fun v -> visited := v :: !visited) table ~rng ~alive ~src ~dst in
  (outcome, List.rev !visited)
