type config = {
  nodes : int;
  bits_list : int list;
  qs : float list;
  trials : int;
  pairs : int;
  seed : int;
}

(* E6: hold the population fixed at 2^10 nodes and grow the identifier
   space from fully populated (d = 10) to 1.5%-occupied (d = 16). *)
let default_config =
  {
    nodes = 1 lsl 10;
    bits_list = [ 10; 12; 14; 16 ];
    qs = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ];
    trials = 3;
    pairs = 1_500;
    seed = 606;
  }

let effective_bits cfg = Idspace.Id.floor_log2 cfg.nodes

let simulate cfg geometry ~bits q =
  let rng = Prng.Splitmix.create ~seed:cfg.seed in
  let delivered = ref 0 in
  let attempted = ref 0 in
  for _ = 1 to cfg.trials do
    let trial_rng = Prng.Splitmix.split rng in
    let overlay = Overlay.Sparse.build ~rng:trial_rng ~bits ~nodes:cfg.nodes geometry in
    let alive = Overlay.Failure.sample ~rng:trial_rng ~q cfg.nodes in
    let pool = Overlay.Failure.survivors alive in
    if Array.length pool >= 2 then
      for _ = 1 to cfg.pairs do
        let src, dst = Stats.Sampler.ordered_pair trial_rng pool in
        incr attempted;
        if Routing.Outcome.is_delivered (Routing.Sparse_router.route overlay ~alive ~src ~dst)
        then incr delivered
      done
  done;
  if !attempted = 0 then 0.0 else float_of_int !delivered /. float_of_int !attempted

(* The paper assumes fully-populated spaces and argues results for real
   (sparse) DHTs "can be similarly derived": this table tests the
   natural conjecture that routability depends on the population size
   (through path lengths ~ log2 N), not on the raw id-space size, by
   pairing each sparse simulation with the fully-populated analysis at
   d_eff = log2 nodes. *)
let run cfg geometry =
  let d_eff = effective_bits cfg in
  Series.tabulate
    ~title:
      (Printf.sprintf
         "E6 (%s): sparse-space routability, %d nodes in growing id spaces"
         (Rcm.Geometry.name geometry) cfg.nodes)
    ~x_label:"q" ~x:cfg.qs
    (( Printf.sprintf "ana(d=%d)" d_eff,
       fun q -> Rcm.Model.routability geometry ~d:d_eff ~q )
    :: List.map
         (fun bits ->
           (Printf.sprintf "sim(d=%d)" bits, simulate cfg geometry ~bits))
         cfg.bits_list)

(* The conjecture quantified: max over the grid of the spread between
   the sparse simulations at different id-space sizes. *)
let max_spread series ~labels =
  let columns = List.filter_map (Series.find_column series) labels in
  match columns with
  | [] | [ _ ] -> 0.0
  | first :: _ ->
      let n = Array.length first.Series.values in
      let spread i =
        let values = List.map (fun c -> c.Series.values.(i)) columns in
        List.fold_left Float.max neg_infinity values
        -. List.fold_left Float.min infinity values
      in
      let worst = ref 0.0 in
      for i = 0 to n - 1 do
        worst := Float.max !worst (spread i)
      done;
      !worst
