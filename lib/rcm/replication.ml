open Numerics

(* Replication extends each routing-table slot to a bucket of up to k
   independent contacts — Kademlia's k-buckets, Chord's successor
   lists, Plaxton backup pointers: the "additional sequential
   neighbors" the paper's introduction credits with buying fault
   tolerance in real deployments. The identifier space caps bucket
   sizes: the bucket correcting the leading bit of a phase-m target has
   only 2^(m-1) candidate ids. *)

let capacity ~k ~m =
  if k < 1 then invalid_arg "Replication.capacity: k < 1"
  else if m < 1 then invalid_arg "Replication.capacity: m < 1"
  else if m - 1 >= 62 then k
  else min k (1 lsl (m - 1))

(* Replicated tree: the phase fails iff every contact of the one useful
   bucket is dead. Q(m) = q^min(k, 2^(m-1)); at m = 1 the bucket is the
   destination itself, so Q(1) = q for every k. *)
let tree_phase_failure ~q ~k ~m =
  Spec.check_q q;
  Prob.pow q (capacity ~k ~m)

(* Replicated XOR: the Fig. 5(b) chain with per-bucket capacities.
   Within a phase-m target the useful buckets are the leading one
   (capacity c0 = min(k, 2^(m-1))) and the m-1 lower ones with
   capacities min(k, 2^(m-2)), ..., min(k, 1); suboptimal hops consume
   the largest lower buckets first (the router's greedy preference).
   Solved by backward recursion over the number of consumed buckets:
   Q_j = fail_j + subopt_j * Q_(j+1). Reduces exactly to Eq. 6 at
   k = 1. *)
let xor_phase_failure ~q ~k ~m =
  Spec.check_q q;
  if m < 1 then invalid_arg "Replication.xor_phase_failure: m < 1";
  let lead_dead = Prob.pow q (capacity ~k ~m) in
  if lead_dead = 0.0 then 0.0
  else begin
    (* lower.(j) = death probability of the j-th lower bucket (0-based,
       largest first): capacity min(k, 2^(m-2-j)). *)
    let lower =
      Array.init (m - 1) (fun j -> Prob.pow q (capacity ~k ~m:(m - 1 - j)))
    in
    (* remaining_dead.(j) = probability that lower buckets j..m-2 are
       all dead. *)
    let remaining_dead = Array.make m 1.0 in
    for j = m - 2 downto 0 do
      remaining_dead.(j) <- remaining_dead.(j + 1) *. lower.(j)
    done;
    let rec backward j =
      if j >= m - 1 then lead_dead
      else begin
        let fail = lead_dead *. remaining_dead.(j) in
        let suboptimal = lead_dead *. (1.0 -. remaining_dead.(j)) in
        fail +. (suboptimal *. backward (j + 1))
      end
    in
    Prob.clamp (backward 0)
  end

(* A successor list holds the next r nodes clockwise (distances 1..r);
   the power-of-two distances among them duplicate existing fingers, so
   only r - (floor(log2 r) + 1) entries add fallback options. *)
let effective_successors r =
  if r < 0 then invalid_arg "Replication.effective_successors: negative count"
  else if r = 0 then 0
  else begin
    let rec log2 v acc = if v <= 1 then acc else log2 (v lsr 1) (acc + 1) in
    r - (log2 r 0 + 1)
  end

(* Chord with an r-entry successor list: within a phase the walk fails
   only when all m useful fingers AND every non-duplicate successor are
   dead, so the chain's failure exponent grows by effective_successors r;
   at m = 1 the destination itself must be alive regardless of r. *)
let ring_phase_failure ~q ~successors ~m =
  Spec.check_q q;
  if m < 1 then invalid_arg "Replication.ring_phase_failure: m < 1";
  let extras = effective_successors successors in
  if m = 1 then q
  else begin
    let all_dead = Prob.pow q (m + extras) in
    if all_dead = 0.0 then 0.0
    else begin
      let s = q *. Prob.at_least_one_of ~q ~count:(m + extras - 1) in
      let hops = Float.pow 2.0 (float_of_int (m - 1)) in
      Prob.clamp (all_dead *. Prob.geometric_sum s hops)
    end
  end

let check_k k = if k < 1 then invalid_arg "Replication: bucket size k must be >= 1"

let tree_spec ~k =
  check_k k;
  {
    Spec.geometry = Geometry.Tree;
    max_phase = (fun ~d -> d);
    log_population = (fun ~d ~h -> Tree.log_population ~d ~h);
    phase_failure = (fun ~d:_ ~q ~m -> tree_phase_failure ~q ~k ~m);
  }

let xor_spec ~k =
  check_k k;
  {
    Spec.geometry = Geometry.Xor;
    max_phase = (fun ~d -> d);
    log_population = (fun ~d ~h -> Xor_routing.log_population ~d ~h);
    phase_failure = (fun ~d:_ ~q ~m -> xor_phase_failure ~q ~k ~m);
  }

let ring_spec ~successors =
  if successors < 0 then invalid_arg "Replication.ring_spec: negative successors";
  {
    Spec.geometry = Geometry.Ring;
    max_phase = (fun ~d -> d);
    log_population = (fun ~d ~h -> Ring.log_population ~d ~h);
    phase_failure = (fun ~d:_ ~q ~m -> ring_phase_failure ~q ~successors ~m);
  }

let routability_tree ~d ~q ~k = Engine.routability (tree_spec ~k) ~d ~q

let routability_xor ~d ~q ~k = Engine.routability (xor_spec ~k) ~d ~q

let routability_ring ~d ~q ~successors = Engine.routability (ring_spec ~successors) ~d ~q
