type config = {
  geometry : Rcm.Geometry.t;
  bits : int;
  q : float;
  trials : int;
  pairs_per_trial : int;
  seed : int;
}

type result = {
  config : config;
  delivered : int;
  attempted : int;
  ci : Stats.Binomial_ci.t;
  hop_summary : Stats.Summary.t;
  mean_alive_fraction : float;
}

let config ?(trials = 3) ?(pairs_per_trial = 2_000) ?(seed = 42) ~bits ~q geometry =
  if trials < 1 then invalid_arg "Estimate.config: need at least one trial";
  if pairs_per_trial < 1 then invalid_arg "Estimate.config: need at least one pair";
  if not (Numerics.Prob.is_valid q) then invalid_arg "Estimate.config: invalid q";
  { geometry; bits; q; trials; pairs_per_trial; seed }

let routability r = Stats.Binomial_ci.point r.ci

let failed_percent r = 100.0 *. (1.0 -. routability r)

(* One static-resilience trial (section 1): build a fresh overlay, fail
   every node independently with probability q, then estimate the
   fraction of routable ordered pairs among the survivors by sampling. *)
let run_trial cfg rng ~delivered ~attempted ~hop_summary =
  let table = Overlay.Table.build ~rng ~bits:cfg.bits cfg.geometry in
  let alive = Overlay.Failure.sample ~rng ~q:cfg.q (Overlay.Table.node_count table) in
  let pool = Overlay.Failure.survivors alive in
  if Array.length pool < 2 then 0.0
  else begin
    for _ = 1 to cfg.pairs_per_trial do
      let src, dst = Stats.Sampler.ordered_pair rng pool in
      incr attempted;
      match Routing.Router.route table ~rng ~alive ~src ~dst with
      | Routing.Outcome.Delivered { hops } ->
          incr delivered;
          Stats.Summary.add hop_summary (float_of_int hops)
      | Routing.Outcome.Dropped _ -> ()
    done;
    float_of_int (Array.length pool) /. float_of_int (Overlay.Table.node_count table)
  end

let run cfg =
  let rng = Prng.Splitmix.create ~seed:cfg.seed in
  let delivered = ref 0 in
  let attempted = ref 0 in
  let hop_summary = Stats.Summary.create () in
  let alive_total = ref 0.0 in
  for _ = 1 to cfg.trials do
    let trial_rng = Prng.Splitmix.split rng in
    alive_total := !alive_total +. run_trial cfg trial_rng ~delivered ~attempted ~hop_summary
  done;
  let attempted_total = max 1 !attempted in
  {
    config = cfg;
    delivered = !delivered;
    attempted = !attempted;
    ci = Stats.Binomial_ci.wilson ~successes:!delivered ~trials:attempted_total ();
    hop_summary;
    mean_alive_fraction = !alive_total /. float_of_int cfg.trials;
  }

let pp_result ppf r =
  Fmt.pf ppf "%a d=%d q=%.3f: routability %a, hops %a" Rcm.Geometry.pp r.config.geometry
    r.config.bits r.config.q Stats.Binomial_ci.pp r.ci Stats.Summary.pp r.hop_summary
