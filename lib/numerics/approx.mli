(** Approximate floating-point comparison, shared by tests and the
    validation experiments. *)

val default_rtol : float
val default_atol : float

val equal : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [equal a b] holds when |a - b| <= atol + rtol * max(|a|, |b|).
    [nan] is equal to nothing. *)

val relative_error : expected:float -> float -> float
(** [relative_error ~expected actual] is |actual - expected| / |expected|
    (absolute error when [expected = 0]). *)

val testable :
  ?rtol:float ->
  ?atol:float ->
  unit ->
  (Format.formatter -> float -> unit) * (float -> float -> bool)
(** Printer and equality suitable for building an Alcotest testable. *)
