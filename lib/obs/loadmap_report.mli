(** Hot-spot analysis over {!Loadmap} counters: per-kind load
    summaries (mean, max, max/mean congestion ratio, Gini coefficient),
    load CDFs, top-K hottest nodes, and the bridge into the {!Metrics}
    snapshot pipeline. Everything is a pure function of the counters:
    no PRNG, no mutation. *)

type summary = {
  nodes : int;
  active_nodes : int;  (** nodes with a non-zero counter *)
  total : int;
  mean : float;  (** total / nodes (all nodes, not just active ones) *)
  max : int;
  congestion : float;
      (** max / mean — 1.0 is perfectly balanced load, N is one node
          absorbing everything; 0.0 by convention when nothing was
          recorded *)
  gini : float;  (** in [0, 1): 0 uniform, -> 1 maximally concentrated *)
}

val gini : int array -> float
(** Exact rank-formula Gini coefficient of a load vector; 0.0 on an
    empty or all-zero vector. *)

val summarize_counts : int array -> summary

val summarize : Loadmap.t -> Loadmap.kind -> summary

val cdf : int array -> (int * float) list
(** [(v, f)] points, ascending in [v]: fraction [f] of nodes carry load
    at most [v]. One point per distinct load value. *)

val hottest : ?top:int -> int array -> (int * int) list
(** The [top] (default 10) most-loaded nodes as [(node, load)], load
    descending with node index breaking ties — a total order, so the
    listing is deterministic. *)

val to_metrics : Loadmap.t -> unit
(** Observe every per-node count into [loadmap/<kind>] histograms,
    which the Prometheus renderer exposes as [dhtlab_loadmap_*] summary
    families. No-op when metrics are disabled. *)

val pp_summary : Format.formatter -> Loadmap.kind * summary -> unit

val pp :
  ?top:int -> ?pp_node:(int -> string) -> Format.formatter -> Loadmap.t -> unit
(** Human-readable dump: one summary line per kind plus its [top]
    hottest nodes. [pp_node] renders a node index (the CLI passes an
    ID-space renderer); default is the decimal index. *)
