(** RCM analysis of the tree (Plaxton) geometry — section 4.3.1.

    n(h) = C(d,h); every hop requires the unique neighbour correcting
    the leftmost differing bit, so Q(m) = q and p(h,q) = (1-q)^h. *)

val log_population : d:int -> h:int -> float
(** log n(h) = log C(d,h). @raise Invalid_argument outside 1..d. *)

val phase_failure : q:float -> m:int -> float
(** Q(m) = q, independent of the phase. *)

val success_probability : q:float -> h:int -> float
(** p(h,q) = (1-q)^h. *)

val routability : d:int -> q:float -> float
(** Closed form r = ((2-q)^d - 1) / ((1-q)·2^d - 1). Defined as 0 when
    fewer than one node survives on average. *)

val spec : Spec.t
