(** Static-resilience failure injection: every node fails independently
    with probability q, and routing tables are not repaired (section 1,
    footnote 1). *)

val sample : ?rng:Prng.Splitmix.t -> q:float -> int -> bool array
(** [sample ~q n] is an alive-mask of [n] nodes; entry [v] is false with
    probability [q], independently. *)

val alive_count : bool array -> int

val survivors : bool array -> int array
(** Ids of alive nodes, ascending. *)

val none : int -> bool array
(** A mask with every node alive. *)

val kill : bool array -> int array -> unit
(** Marks the given ids dead (targeted-failure experiments). *)

val sample_block : ?rng:Prng.Splitmix.t -> fraction:float -> int -> bool array
(** [sample_block ~fraction n] kills round(fraction * n) *contiguous*
    ids starting at a random offset (wrapping) — a correlated outage,
    in contrast to {!sample}'s independent failures. *)
