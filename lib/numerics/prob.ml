type t = float

let is_valid p = Float.is_finite p && p >= 0.0 && p <= 1.0

let check ~fn p =
  if not (is_valid p) then invalid_arg (Printf.sprintf "%s: %g is not a probability" fn p)

let clamp p =
  if Float.is_nan p then invalid_arg "Prob.clamp: nan"
  else Float.max 0.0 (Float.min 1.0 p)

let complement p =
  check ~fn:"Prob.complement" p;
  1.0 -. p

(* q^m via exp(m log q): one rounding instead of m of them, and exact at
   the q = 0 / q = 1 endpoints. *)
let pow q m =
  check ~fn:"Prob.pow" q;
  if m < 0 then invalid_arg "Prob.pow: negative exponent"
  else if m = 0 then 1.0
  else if q = 0.0 then 0.0
  else if q = 1.0 then 1.0
  else exp (float_of_int m *. log q)

let pow_real q x =
  check ~fn:"Prob.pow_real" q;
  if x < 0.0 then invalid_arg "Prob.pow_real: negative exponent"
  else if x = 0.0 then 1.0
  else if q = 0.0 then 0.0
  else if q = 1.0 then 1.0
  else exp (x *. log q)

(* sum_{k=0..n-1} x^k, stable when x is close to 1 (where the closed form
   (1-x^n)/(1-x) cancels catastrophically). [n] is a float so that callers
   with astronomically many terms (ring routing allows 2^(m-1) suboptimal
   hops) need not materialise the count as an int. *)
let geometric_sum x n =
  if n < 0.0 then invalid_arg "Prob.geometric_sum: negative length"
  else if n = 0.0 then 0.0
  else if Float.abs (1.0 -. x) < 1e-9 then
    (* x ~ 1: sum ~ n with a first-order correction. *)
    let eps = 1.0 -. x in
    n -. (eps *. n *. (n -. 1.0) /. 2.0)
  else (1.0 -. (x ** n)) /. (1.0 -. x)

let at_least_one_of ~q ~count =
  check ~fn:"Prob.at_least_one_of" q;
  if count < 0 then invalid_arg "Prob.at_least_one_of: negative count"
  else if count = 0 then 0.0
  else if q = 0.0 then 1.0
  else if q = 1.0 then 0.0
  else clamp (-.Float.expm1 (float_of_int count *. Stdlib.log q))

let log p =
  check ~fn:"Prob.log" p;
  Stdlib.log p
