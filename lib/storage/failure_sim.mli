(** Data availability under static i.i.d. node failure.

    One {!run} evaluates a single (geometry, q) point: [trials]
    independent worlds are built (fresh overlay, key placement and
    alive-mask each), and in each world [reads] quorum reads with
    read-repair are issued from uniformly chosen alive clients. The
    replica-survival observable is counted once per key per trial
    against the {e initial} placement, so it is exactly
    Binomial(r, 1-q) per key and comparable to
    {!Rcm.Data_availability.replica_survival}.

    Determinism: everything is driven by one sequential stream derived
    from [seed]; a point replays bit-identically. *)

type config = {
  bits : int;  (** identifier space is 2^bits *)
  nodes : int;  (** overlay size (node count, not space size) *)
  keys : int;  (** keys placed per trial *)
  reads : int;  (** reads issued per trial *)
  zipf_s : float;  (** key-popularity exponent *)
  quorum : Quorum.t;
  trials : int;
}

val validate : config -> unit
(** @raise Invalid_argument on out-of-range fields. *)

type result = {
  attempted : int;  (** reads actually issued (requires an alive client) *)
  quorum_reads : int;
  degraded_reads : int;
  failed_reads : int;
  no_client : int;  (** reads skipped because no node was alive *)
  availability : float option;
      (** quorum_reads / attempted; [None] when nothing was attempted —
          never fabricated as 0. *)
  survival : float;  (** surviving key fraction over all key-trials *)
  mean_alive : float;  (** measured alive fraction over all trials *)
  probe_routes : int;
  repair_routes : int;
  repair_transfers : int;
  load_max : int;  (** busiest node's reads served, over all trials *)
  load_mean : float;  (** mean reads served per node *)
  load_p99 : int;  (** 99th percentile of per-node reads served *)
}

val run : Rcm.Geometry.t -> config -> q:float -> seed:int -> result
(** @raise Invalid_argument on invalid config, q outside [0, 1], or a
    hypercube geometry. *)
