type config = { q : float; ds : int list }

(* Routability versus system size at fixed failure probability: the
   paper's scalability picture, q = 0.1 out to N ~ 10^12. *)
let default_config = { q = 0.1; ds = Grid.fig7b_d }

let geometries = Rcm.Geometry.all_default

let run cfg =
  Series.tabulate
    ~title:(Printf.sprintf "Fig 7(b): routability vs system size (d = log2 N) at q=%.2f" cfg.q)
    ~x_label:"d" ~x:(List.map float_of_int cfg.ds)
    (List.map
       (fun g ->
         ( Rcm.Geometry.slug g,
           fun d -> Rcm.Model.routability g ~d:(int_of_float d) ~q:cfg.q ))
       geometries)

(* Tree decays like ((2-q)/2)^d — slow at q = 0.1 (~0.14 at d = 40) —
   so the default final ceiling is loose; what matters is the monotone
   decay toward zero, in contrast with the scalable geometries' flat
   curves. *)
let monotonically_decaying ?(final_below = 0.3) series ~label =
  match Series.find_column series label with
  | None -> false
  | Some c ->
      let ok = ref true in
      Array.iteri
        (fun i v -> if i > 0 then ok := !ok && v <= c.Series.values.(i - 1) +. 1e-12)
        c.Series.values;
      !ok && c.Series.values.(Array.length c.Series.values - 1) < final_below

let stays_routable series ~label ~floor =
  match Series.find_column series label with
  | None -> false
  | Some c -> Array.for_all (fun v -> v >= floor) c.Series.values
