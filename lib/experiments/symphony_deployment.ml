type config = { bits : int; qs : float list; trials : int; pairs : int; seed : int }

let default_config =
  { bits = 12; qs = Grid.fig6_q; trials = 3; pairs = 1_500; seed = 131 }

(* A9: the paper analyses Symphony's *basic* unidirectional geometry;
   the deployed protocol is bidirectional (links usable from both
   endpoints, near neighbours on both sides). The comparison is run at
   matched k_n and k_s — the bidirectional node then has about twice
   the usable degree, which is precisely the deployment's point. *)

let simulate_unidirectional cfg ~k_n ~k_s q =
  Stats.Binomial_ci.point
    (Table_sim.routability
       ~build:(fun rng ->
         Overlay.Table.build ~rng ~bits:cfg.bits (Rcm.Geometry.Symphony { k_n; k_s }))
       ~q ~trials:cfg.trials ~pairs:cfg.pairs ~seed:cfg.seed)

let simulate_bidirectional cfg ~k_n ~k_s q =
  let rng = Prng.Splitmix.create ~seed:cfg.seed in
  let delivered = ref 0 in
  let attempted = ref 0 in
  for _ = 1 to cfg.trials do
    let trial_rng = Prng.Splitmix.split rng in
    let table =
      Overlay.Table.build_symphony_bidirectional ~rng:trial_rng ~bits:cfg.bits ~k_n ~k_s ()
    in
    let alive = Overlay.Failure.sample ~rng:trial_rng ~q (Overlay.Table.node_count table) in
    let pool = Overlay.Failure.survivors alive in
    if Array.length pool >= 2 then
      for _ = 1 to cfg.pairs do
        let src, dst = Stats.Sampler.ordered_pair trial_rng pool in
        incr attempted;
        if
          Routing.Outcome.is_delivered
            (Routing.Bidirectional_ring.route table ~alive ~src ~dst)
        then incr delivered
      done
  done;
  if !attempted = 0 then 0.0 else float_of_int !delivered /. float_of_int !attempted

let run ?(k_n = 1) ?(k_s = 1) cfg =
  Series.tabulate
    ~title:
      (Printf.sprintf
         "A9: Symphony basic geometry vs deployed protocol, N=2^%d, k_n=%d, k_s=%d"
         cfg.bits k_n k_s)
    ~x_label:"q" ~x:cfg.qs
    [
      ( "analysis(uni)",
        fun q -> Rcm.Model.routability (Rcm.Geometry.Symphony { k_n; k_s }) ~d:cfg.bits ~q );
      ("sim(uni)", simulate_unidirectional cfg ~k_n ~k_s);
      ("sim(bidir)", simulate_bidirectional cfg ~k_n ~k_s);
    ]

(* Bidirectional links can only help (twice the usable degree and two
   approach directions). *)
let bidirectional_wins ?(slack = 0.03) series =
  match (Series.find_column series "sim(uni)", Series.find_column series "sim(bidir)") with
  | Some uni, Some bidir ->
      let ok = ref true in
      Array.iteri
        (fun i _ -> if bidir.Series.values.(i) < uni.Series.values.(i) -. slack then ok := false)
        series.Series.x;
      !ok
  | None, _ | _, None -> invalid_arg "Symphony_deployment.bidirectional_wins: not an A9 series"
