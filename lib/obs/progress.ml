type mode = Auto | On | Off

(* [live] mirrors "a phase is active and allowed to render" so the
   inactive fast path of [tick]/[note_*] is one atomic load — the same
   gating discipline as Metrics and Trace. All other state is guarded
   by [lock]; ticks arrive from worker domains. *)
let live = Atomic.make false

let lock = Mutex.create ()

let mode = ref Off

let channel = ref stderr

(* At most this many repaints per second: a tick is usually a mutex and
   a clock read, terminal writes happen ten times a second. *)
let min_render_gap = 0.1

type group = { g_name : string; g_total : int; mutable g_done : int }

type phase = {
  label : string;
  total : int;
  groups : group array;  (* empty when the caller declared none *)
  started_at : float;
  mutable completed : int;
  mutable failed : int;
  mutable retried : int;
  mutable current_group : int;  (* index of the last-ticked group, -1 = none *)
  mutable last_render : float;
  mutable last_width : int;  (* painted width, to blank shorter repaints *)
}

let phase : phase option ref = ref None

let set_mode m =
  Mutex.lock lock;
  mode := m;
  Mutex.unlock lock

let set_channel oc =
  Mutex.lock lock;
  channel := oc;
  Mutex.unlock lock

let active () = Atomic.get live

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* A rate computed against a zero or near-zero elapsed time (the first
   trials of a group can all land inside one rate-limit window) divides
   by (almost) nothing and turns into inf — which "%.1f" then prints
   verbatim and which poisons the ETA quotient. Treat any such rate as
   "no estimate yet": 0.0, which the ETA formatter below renders as
   "-:--". *)
let safe_rate ~completed ~elapsed =
  if completed <= 0 || not (Float.is_finite elapsed) || elapsed <= 1e-6 then 0.0
  else
    let rate = float_of_int completed /. elapsed in
    if Float.is_finite rate then rate else 0.0

let eta_string seconds =
  if not (Float.is_finite seconds) || seconds < 0.0 then "-:--"
  else begin
    let s = int_of_float (Float.round seconds) in
    if s >= 3600 then Printf.sprintf "%d:%02d:%02d" (s / 3600) (s mod 3600 / 60) (s mod 60)
    else Printf.sprintf "%d:%02d" (s / 60) (s mod 60)
  end

let render_locked p ~now =
  let rate = safe_rate ~completed:p.completed ~elapsed:(now -. p.started_at) in
  let eta done_ total =
    if done_ = 0 || rate = 0.0 then "-:--"
    else eta_string (float_of_int (total - done_) /. rate)
  in
  let buffer = Buffer.create 128 in
  Buffer.add_char buffer '\r';
  if p.label <> "" then Buffer.add_string buffer (p.label ^ "  ");
  Buffer.add_string buffer
    (Printf.sprintf "%d/%d trials  %.1f/s" p.completed p.total rate);
  if p.current_group >= 0 then begin
    let g = p.groups.(p.current_group) in
    Buffer.add_string buffer
      (Printf.sprintf "  %s %d/%d eta %s" g.g_name g.g_done g.g_total
         (eta g.g_done g.g_total))
  end;
  Buffer.add_string buffer
    (Printf.sprintf "  overall eta %s" (eta p.completed p.total));
  if p.failed > 0 then Buffer.add_string buffer (Printf.sprintf "  failed %d" p.failed);
  if p.retried > 0 then Buffer.add_string buffer (Printf.sprintf "  retried %d" p.retried);
  let width = Buffer.length buffer - 1 in
  (* Blank the tail of a previously longer paint. *)
  for _ = width to p.last_width - 1 do
    Buffer.add_char buffer ' '
  done;
  p.last_width <- width;
  p.last_render <- now;
  output_string !channel (Buffer.contents buffer);
  flush !channel

let clear_locked p =
  if p.last_width > 0 then begin
    output_char !channel '\r';
    output_string !channel (String.make p.last_width ' ');
    output_char !channel '\r';
    flush !channel
  end

let finish () =
  if Atomic.get live then
    with_lock (fun () ->
        match !phase with
        | Some p ->
            clear_locked p;
            phase := None;
            Atomic.set live false
        | None -> ())

let start ?(label = "") ?(groups = []) ~total () =
  with_lock (fun () ->
      (match !phase with Some p -> clear_locked p | None -> ());
      let enabled =
        total > 0
        &&
        match !mode with
        | On -> true
        | Off -> false
        | Auto -> ( try Unix.isatty (Unix.descr_of_out_channel !channel) with Unix.Unix_error _ | Sys_error _ -> false)
      in
      if not enabled then begin
        phase := None;
        Atomic.set live false
      end
      else begin
        let p =
          {
            label;
            total;
            groups =
              Array.of_list
                (List.map (fun (g_name, g_total) -> { g_name; g_total; g_done = 0 }) groups);
            started_at = Unix.gettimeofday ();
            completed = 0;
            failed = 0;
            retried = 0;
            current_group = -1;
            last_render = 0.0;
            last_width = 0;
          }
        in
        phase := Some p;
        Atomic.set live true;
        render_locked p ~now:p.started_at
      end)

let find_group p name =
  let found = ref (-1) in
  Array.iteri (fun i g -> if !found < 0 && g.g_name = name then found := i) p.groups;
  !found

let tick ?group () =
  if Atomic.get live then
    with_lock (fun () ->
        match !phase with
        | None -> ()
        | Some p ->
            p.completed <- p.completed + 1;
            (match group with
            | Some name ->
                let i = find_group p name in
                if i >= 0 then begin
                  p.groups.(i).g_done <- p.groups.(i).g_done + 1;
                  p.current_group <- i
                end
            | None -> ());
            let now = Unix.gettimeofday () in
            (* Always paint the final tick so a finished phase reads
               total/total before [finish] erases it. *)
            if now -. p.last_render >= min_render_gap || p.completed >= p.total then
              render_locked p ~now)

let note counter =
  if Atomic.get live then
    with_lock (fun () ->
        match !phase with
        | None -> ()
        | Some p -> (
            counter p;
            let now = Unix.gettimeofday () in
            if now -. p.last_render >= min_render_gap then render_locked p ~now))

let note_retry () = note (fun p -> p.retried <- p.retried + 1)

let note_failed () = note (fun p -> p.failed <- p.failed + 1)
