(** Wilson score confidence intervals for Monte-Carlo success
    proportions (routability estimates). *)

type t

val z_95 : float
(** Two-sided 95% normal quantile. *)

val wilson : ?z:float -> successes:int -> trials:int -> unit -> t
(** @raise Invalid_argument when [trials <= 0] or counts inconsistent. *)

val point : t -> float
val lower : t -> float
val upper : t -> float
val half_width : t -> float

val contains : t -> float -> bool
(** [contains t p] is true when [p] lies inside the interval. *)

val pp : Format.formatter -> t -> unit
