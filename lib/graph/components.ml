type report = {
  alive_nodes : int;
  component_count : int;
  largest : int;
  giant_fraction : float;
  pair_connectivity : float;
}

(* Fraction of ordered alive pairs lying in the same component:
   sum_c s_c (s_c - 1) / (a (a - 1)). This is the information-theoretic
   ceiling on routability — the paper's point that the reachable
   component is a subset of the connected component means measured
   routability can never exceed it. *)
let analyze ?alive graph =
  let n = Digraph.node_count graph in
  let is_alive v = match alive with None -> true | Some a -> a.(v) in
  let alive_nodes = ref 0 in
  for v = 0 to n - 1 do
    if is_alive v then incr alive_nodes
  done;
  let uf = Digraph.undirected_components ?alive graph in
  let sizes = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    if is_alive v then begin
      let r = Union_find.find uf v in
      Hashtbl.replace sizes r (1 + Option.value ~default:0 (Hashtbl.find_opt sizes r))
    end
  done;
  let component_count = Hashtbl.length sizes in
  let largest = Hashtbl.fold (fun _ s acc -> max s acc) sizes 0 in
  let a = float_of_int !alive_nodes in
  let connected_pairs =
    Hashtbl.fold (fun _ s acc -> acc +. (float_of_int s *. float_of_int (s - 1))) sizes 0.0
  in
  let pair_connectivity =
    if !alive_nodes < 2 then 0.0 else connected_pairs /. (a *. (a -. 1.0))
  in
  {
    alive_nodes = !alive_nodes;
    component_count;
    largest;
    giant_fraction = (if !alive_nodes = 0 then 0.0 else float_of_int largest /. a);
    pair_connectivity;
  }

let pp ppf r =
  Fmt.pf ppf "alive=%d components=%d largest=%d giant=%.4f pair-connectivity=%.4f"
    r.alive_nodes r.component_count r.largest r.giant_fraction r.pair_connectivity
