(* Minimal substring search for the CLI smoke tests (no external string
   library needed). *)
let contains haystack needle =
  let n = String.length needle in
  let h = String.length haystack in
  if n = 0 then true
  else begin
    let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
    scan 0
  end
