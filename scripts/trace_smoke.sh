#!/usr/bin/env sh
# Trace smoke: prove the trace pipeline end to end.
#
#   1. --smoke sweep with --trace-out (plus the metrics/manifest sinks
#      and a sub-second heartbeat): stdout must be byte-identical to
#      the same sweep with no observability at all.
#   2. dhtlab trace report on the result: every aggregate section the
#      tooling promises (spans, domains, per-geometry hop counts,
#      slowest spans) must be present, and at least one heartbeat must
#      have been recorded.
#   3. dhtlab trace export-chrome: the converted file must carry the
#      Chrome trace-event envelope and complete-span events.
#
# Usage: scripts/trace_smoke.sh [path-to-dhtlab] [path-to-validate]
# TRACE_WORK, when set, names the work directory to use (and keep) so
# CI can upload it on failure. Exits non-zero on the first violation.

set -eu

DHTLAB=${1:-_build/default/bin/dhtlab.exe}
VALIDATE=${2:-_build/default/bench/validate.exe}
if [ -n "${TRACE_WORK:-}" ]; then
    WORK=$TRACE_WORK
    mkdir -p "$WORK"
else
    WORK=$(mktemp -d "${TMPDIR:-/tmp}/trace_smoke.XXXXXX")
    trap 'rm -rf "$WORK"' EXIT INT TERM
fi

ARGS="simulate --smoke -g xor --seed 7 --jobs 2"

fail() {
    echo "trace-smoke: FAIL: $1" >&2
    exit 1
}

echo "trace-smoke: 1/3 traced sweep vs observability-free baseline"
$DHTLAB $ARGS > "$WORK/baseline.txt"
$DHTLAB $ARGS --trace-out "$WORK/run.jsonl" --obs-interval 0.1 \
    --metrics-out "$WORK/run.metrics.json" --metrics-prom "$WORK/run.prom" \
    --manifest "$WORK/run.manifest.json" --no-progress \
    > "$WORK/traced.txt" 2> "$WORK/traced.err"
diff "$WORK/baseline.txt" "$WORK/traced.txt" \
    || fail "stdout differs with tracing enabled"
[ -e "$WORK/run.jsonl" ] || fail "no trace file"
[ -e "$WORK/run.jsonl.tmp" ] && fail "trace close left run.jsonl.tmp behind"
$VALIDATE --manifest "$WORK/run.manifest.json" || fail "manifest failed validation"
$VALIDATE --metrics "$WORK/run.metrics.json" || fail "metrics snapshot failed validation"
grep -q '^# TYPE dhtlab_' "$WORK/run.prom" \
    || fail "Prometheus textfile carries no dhtlab_ family"

echo "trace-smoke: 2/3 trace report aggregates"
$DHTLAB trace report "$WORK/run.jsonl" > "$WORK/report.txt"
for section in "==== trace ====" "==== spans ====" "==== domains ====" \
               "==== hops (per geometry) ====" "==== slowest spans ===="; do
    grep -qF "$section" "$WORK/report.txt" || fail "report missing section '$section'"
done
grep -q "estimate/sweep" "$WORK/report.txt" || fail "report lists no estimate/sweep span"
grep -q "^xor " "$WORK/report.txt" || fail "report has no xor hop distribution"

echo "trace-smoke: 3/3 Chrome trace-event export"
$DHTLAB trace export-chrome "$WORK/run.jsonl" -o "$WORK/run.chrome.json" > /dev/null
grep -q '"displayTimeUnit": "ms"' "$WORK/run.chrome.json" \
    || fail "chrome export missing the trace-event envelope"
grep -q '"ph": "X"' "$WORK/run.chrome.json" \
    || fail "chrome export carries no complete-span events"

echo "trace-smoke: OK (trace, report, chrome export and sinks all consistent)"
