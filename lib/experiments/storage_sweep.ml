type mode =
  | Static of { qs : float list; trials : int }
  | Churn of {
      session_means : float list;
      session_shape : Sim.Lifetime.shape;
      gap_mean : float;
      gap_shape : Sim.Lifetime.shape;
      warmup : float;
      measurements : int;
      spacing : float;
    }

type config = {
  bits : int;
  nodes : int;
  keys : int;
  reads : int;
  zipf_s : float;
  rs : int list;
  rq_spec : string;
  wq_spec : string;
  mode : mode;
  seed : int;
}

let default_config =
  {
    bits = 10;
    nodes = 512;
    keys = 64;
    reads = 256;
    zipf_s = 0.8;
    rs = [ 1; 2; 4 ];
    rq_spec = "majority";
    wq_spec = "majority";
    mode = Static { qs = [ 0.1; 0.2; 0.3; 0.4; 0.5 ]; trials = 4 };
    seed = 909;
  }

let quorum_for cfg ~r =
  let resolve name spec =
    match Storage.Quorum.threshold_of_string ~r spec with
    | Ok k -> k
    | Error msg ->
        invalid_arg (Printf.sprintf "Storage_sweep: %s: %s" name msg)
  in
  Storage.Quorum.make ~r ~rq:(resolve "read quorum" cfg.rq_spec)
    ~wq:(resolve "write quorum" cfg.wq_spec)

let axis_values cfg =
  match cfg.mode with
  | Static { qs; _ } -> qs
  | Churn { session_means; _ } -> session_means

let churn_config cfg ~quorum ~session_shape ~gap_shape ~gap_mean ~warmup
    ~measurements ~spacing ~session_mean =
  let lifetime shape ~mean =
    match shape with
    | Sim.Lifetime.Exponential -> Sim.Lifetime.exponential ~mean
    | Sim.Lifetime.Pareto alpha -> Sim.Lifetime.pareto ~alpha ~mean
    | Sim.Lifetime.Weibull s -> Sim.Lifetime.weibull ~shape:s ~mean
  in
  {
    Storage.Churn_sim.bits = cfg.bits;
    nodes = cfg.nodes;
    keys = cfg.keys;
    reads = cfg.reads;
    zipf_s = cfg.zipf_s;
    quorum;
    session = lifetime session_shape ~mean:session_mean;
    gap = lifetime gap_shape ~mean:gap_mean;
    warmup;
    measurements;
    spacing;
  }

let validate cfg =
  if cfg.rs = [] then invalid_arg "Storage_sweep: empty replication sweep";
  if axis_values cfg = [] then invalid_arg "Storage_sweep: empty axis";
  List.iter
    (fun r ->
      let quorum = quorum_for cfg ~r in
      match cfg.mode with
      | Static { qs; trials } ->
          List.iter (fun q -> Rcm.Spec.check_q q) qs;
          Storage.Failure_sim.validate
            {
              Storage.Failure_sim.bits = cfg.bits;
              nodes = cfg.nodes;
              keys = cfg.keys;
              reads = cfg.reads;
              zipf_s = cfg.zipf_s;
              quorum;
              trials;
            }
      | Churn { session_means; session_shape; gap_mean; gap_shape; warmup; measurements; spacing } ->
          List.iter
            (fun mean ->
              Storage.Churn_sim.validate
                (churn_config cfg ~quorum ~session_shape ~gap_shape ~gap_mean
                   ~warmup ~measurements ~spacing ~session_mean:mean))
            session_means)
    cfg.rs

type point = {
  geometry : Rcm.Geometry.t;
  r : int;
  rq : int;
  wq : int;
  axis : float;
  churn_rate : float;
  attempted : int;
  quorum_reads : int;
  degraded_reads : int;
  failed_reads : int;
  no_client : int;
  availability : float;
  survival : float;
  analytic : float;
  mean_alive : float;
  probe_routes : int;
  repair_routes : int;
  repair_transfers : int;
  load_max : int;
  load_mean : float;
  load_p99 : int;
  events : int;
}

(* Same per-point PRNG discipline as Churn_curves.point_seeds: seeds
   derive by grid index from one master stream, masked to 48 bits so
   they round-trip exactly through the checkpoint's JSON numbers. *)
let point_seeds cfg ~tasks =
  let master = Prng.Splitmix.create ~seed:cfg.seed in
  Array.init tasks (fun _ ->
      Int64.to_int (Prng.Splitmix.next_int64 master) land 0xFFFF_FFFF_FFFF)

let mode_tag = function Static _ -> "static" | Churn _ -> "churn"

let storage_key cfg geometry ~quorum ~axis ~seed =
  let session, gap, gap_mean, warmup, measurements, spacing, trials =
    match cfg.mode with
    | Static { trials; _ } -> ("", "", 0., 0., 0, 0., trials)
    | Churn { session_shape; gap_shape; gap_mean; warmup; measurements; spacing; _ } ->
        ( Sim.Lifetime.shape_to_string session_shape,
          Sim.Lifetime.shape_to_string gap_shape,
          gap_mean,
          warmup,
          measurements,
          spacing,
          1 )
  in
  {
    Sim.Checkpoint.k_geometry = Rcm.Geometry.slug geometry;
    k_bits = cfg.bits;
    k_nodes = cfg.nodes;
    k_keys = cfg.keys;
    k_reads = cfg.reads;
    k_zipf = cfg.zipf_s;
    k_r = quorum.Storage.Quorum.r;
    k_rq = quorum.Storage.Quorum.rq;
    k_wq = quorum.Storage.Quorum.wq;
    k_mode = mode_tag cfg.mode;
    k_axis = axis;
    k_session = session;
    k_gap = gap;
    k_gap_mean = gap_mean;
    k_warmup = warmup;
    k_measurements = measurements;
    k_spacing = spacing;
    k_trials = trials;
    k_seed = seed;
  }

let analytic cfg ~quorum ~axis =
  let r = quorum.Storage.Quorum.r and rq = quorum.Storage.Quorum.rq in
  match cfg.mode with
  | Static _ -> Rcm.Data_availability.replica_survival ~q:axis ~r ~quorum:rq
  | Churn { gap_mean; _ } ->
      (* Steady-state offline fraction plays the role of q: the
         no-repair baseline the simulated (repaired) survival should
         beat. *)
      let q = gap_mean /. (axis +. gap_mean) in
      Rcm.Data_availability.replica_survival ~q ~r ~quorum:rq

let run_static cfg geometry ~quorum ~q ~trials ~seed =
  let result =
    Storage.Failure_sim.run geometry
      {
        Storage.Failure_sim.bits = cfg.bits;
        nodes = cfg.nodes;
        keys = cfg.keys;
        reads = cfg.reads;
        zipf_s = cfg.zipf_s;
        quorum;
        trials;
      }
      ~q ~seed
  in
  {
    Sim.Checkpoint.sp_attempted = result.Storage.Failure_sim.attempted;
    sp_quorum = result.quorum_reads;
    sp_degraded = result.degraded_reads;
    sp_failed = result.failed_reads;
    sp_no_client = result.no_client;
    sp_availability = Option.value result.availability ~default:Float.nan;
    sp_survival = result.survival;
    sp_analytic = analytic cfg ~quorum ~axis:q;
    sp_mean_alive = result.mean_alive;
    sp_probe_routes = result.probe_routes;
    sp_repair_routes = result.repair_routes;
    sp_repair_transfers = result.repair_transfers;
    sp_load_max = result.load_max;
    sp_load_mean = result.load_mean;
    sp_load_p99 = result.load_p99;
    sp_events = 0;
  }

let run_churn cfg geometry ~quorum ~session_mean ~seed =
  match cfg.mode with
  | Static _ -> assert false
  | Churn { session_shape; gap_shape; gap_mean; warmup; measurements; spacing; _ } ->
      let result =
        Storage.Churn_sim.run geometry
          (churn_config cfg ~quorum ~session_shape ~gap_shape ~gap_mean
             ~warmup ~measurements ~spacing ~session_mean)
          ~seed
      in
      {
        Sim.Checkpoint.sp_attempted = result.Storage.Churn_sim.attempted;
        sp_quorum = result.quorum_reads;
        sp_degraded = result.degraded_reads;
        sp_failed = result.failed_reads;
        sp_no_client = result.no_client;
        sp_availability = Option.value result.availability ~default:Float.nan;
        sp_survival = result.survival;
        sp_analytic = analytic cfg ~quorum ~axis:session_mean;
        sp_mean_alive = result.mean_alive;
        sp_probe_routes = result.probe_routes;
        sp_repair_routes = result.repair_routes;
        sp_repair_transfers = result.repair_transfers;
        sp_load_max = result.load_max;
        sp_load_mean = result.load_mean;
        sp_load_p99 = result.load_p99;
        sp_events = result.events;
      }

let run_point cfg geometry ~quorum ~axis ~seed =
  let t0 = if Obs.Metrics.enabled () then Unix.gettimeofday () else 0.0 in
  let point =
    match cfg.mode with
    | Static { trials; _ } -> run_static cfg geometry ~quorum ~q:axis ~trials ~seed
    | Churn _ -> run_churn cfg geometry ~quorum ~session_mean:axis ~seed
  in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr_named "storage/points";
    Obs.Metrics.observe_named "storage/point_s" (Unix.gettimeofday () -. t0)
  end;
  point

let churn_rate_of cfg ~axis =
  match cfg.mode with
  | Static _ -> Float.nan
  | Churn { gap_mean; _ } -> 1. /. (axis +. gap_mean)

let point_of_stored cfg geometry ~quorum ~axis (p : Sim.Checkpoint.storage_point) =
  {
    geometry;
    r = quorum.Storage.Quorum.r;
    rq = quorum.Storage.Quorum.rq;
    wq = quorum.Storage.Quorum.wq;
    axis;
    churn_rate = churn_rate_of cfg ~axis;
    attempted = p.Sim.Checkpoint.sp_attempted;
    quorum_reads = p.sp_quorum;
    degraded_reads = p.sp_degraded;
    failed_reads = p.sp_failed;
    no_client = p.sp_no_client;
    availability = p.sp_availability;
    survival = p.sp_survival;
    analytic = p.sp_analytic;
    mean_alive = p.sp_mean_alive;
    probe_routes = p.sp_probe_routes;
    repair_routes = p.sp_repair_routes;
    repair_transfers = p.sp_repair_transfers;
    load_max = p.sp_load_max;
    load_mean = p.sp_load_mean;
    load_p99 = p.sp_load_p99;
    events = p.sp_events;
  }

let default_geometries =
  [ Rcm.Geometry.Ring; Rcm.Geometry.Tree; Rcm.Geometry.Xor; Rcm.Geometry.default_symphony ]

let run ?pool ?(geometries = default_geometries) ?(retries = 0) ?fault ?checkpoint cfg =
  if retries < 0 then invalid_arg "Storage_sweep.run: negative retries";
  validate cfg;
  List.iter
    (fun g ->
      if g = Rcm.Geometry.Hypercube then
        invalid_arg "Storage_sweep.run: no sparse hypercube overlay exists")
    geometries;
  let geoms = Array.of_list geometries in
  let rs = Array.of_list cfg.rs in
  let axes = Array.of_list (axis_values cfg) in
  let quorums = Array.map (fun r -> quorum_for cfg ~r) rs in
  let per_r = Array.length axes in
  let per_geom = Array.length rs * per_r in
  let n = Array.length geoms * per_geom in
  let seeds = point_seeds cfg ~tasks:n in
  let coords i =
    let geometry = geoms.(i / per_geom) in
    let rest = i mod per_geom in
    (geometry, quorums.(rest / per_r), axes.(rest mod per_r))
  in
  Obs.Progress.start ~label:"storage"
    ~groups:
      (Array.to_list (Array.map (fun g -> (Rcm.Geometry.slug g, per_geom)) geoms))
    ~total:n ();
  let tick i = Obs.Progress.tick ~group:(Rcm.Geometry.slug geoms.(i / per_geom)) () in
  let run_one i =
    let geometry, quorum, axis = coords i in
    let seed = seeds.(i) in
    let key = storage_key cfg geometry ~quorum ~axis ~seed in
    let stored = Option.bind checkpoint (fun ck -> Sim.Checkpoint.find_storage ck key) in
    match stored with
    | Some p ->
        tick i;
        Exec.Pool.Done p
    | None ->
        let task ~attempt i =
          Exec.Fault.inject fault ~task:i ~attempt;
          run_point cfg geometry ~quorum ~axis ~seed
        in
        let outcome = Exec.Pool.supervised ~retries ~task i in
        (match (checkpoint, outcome) with
        | Some ck, Exec.Pool.Done p -> Sim.Checkpoint.record_storage ck key p
        | (Some _ | None), _ -> ());
        (match outcome with
        | Exec.Pool.Cancelled -> ()
        | Exec.Pool.Done _ | Exec.Pool.Failed _ -> tick i);
        outcome
  in
  let outcomes =
    match pool with
    | Some pool when Exec.Pool.size pool > 1 -> Exec.Pool.map pool n run_one
    | Some _ | None -> Array.init n run_one
  in
  Option.iter Sim.Checkpoint.flush checkpoint;
  Obs.Progress.finish ();
  if Array.exists (function Exec.Pool.Cancelled -> true | _ -> false) outcomes then
    raise Exec.Cancel.Cancelled;
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Exec.Pool.Failed { attempts; error } ->
          let geometry, quorum, axis = coords i in
          failwith
            (Printf.sprintf
               "storage point %d (%s, r=%d, %s %g) failed after %d attempts: %s" i
               (Rcm.Geometry.slug geometry)
               quorum.Storage.Quorum.r (mode_tag cfg.mode) axis attempts error)
      | Exec.Pool.Done _ | Exec.Pool.Cancelled -> ())
    outcomes;
  List.init n (fun i ->
      let geometry, quorum, axis = coords i in
      match outcomes.(i) with
      | Exec.Pool.Done p -> point_of_stored cfg geometry ~quorum ~axis p
      | Exec.Pool.Failed _ | Exec.Pool.Cancelled -> assert false)

(* --- rendering -------------------------------------------------------------- *)

let float_or_nan v tag = if Float.is_finite v then Printf.sprintf tag v else "nan"

let pp_points ppf points =
  Fmt.pf ppf
    "# replicated storage: quorum-read availability and replica survival vs the Leslie closed form@.";
  Fmt.pf ppf "%-10s %3s %3s %3s %8s %8s %9s %9s %9s %8s %8s %8s@." "geometry" "r" "rq"
    "wq" "axis" "avail" "survival" "analytic" "degraded" "repairs" "load-max" "load-p99";
  List.iter
    (fun p ->
      let degraded =
        if p.attempted = 0 then Float.nan
        else float_of_int p.degraded_reads /. float_of_int p.attempted
      in
      Fmt.pf ppf "%-10s %3d %3d %3d %8g %8s %9.4f %9.4f %9s %8d %8d %8d@."
        (Rcm.Geometry.slug p.geometry)
        p.r p.rq p.wq p.axis
        (float_or_nan p.availability "%8.4f")
        p.survival p.analytic
        (float_or_nan degraded "%9.4f")
        p.repair_transfers p.load_max p.load_p99)
    points

let csv_header =
  "geometry,bits,nodes,keys,mode,r,rq,wq,axis,churn_rate,attempted,quorum_reads,degraded_reads,failed_reads,no_client,availability,survival,analytic,alive,probe_routes,repair_routes,repair_transfers,load_max,load_mean,load_p99,events"

let to_csv_row cfg p =
  Printf.sprintf
    "%s,%d,%d,%d,%s,%d,%d,%d,%g,%s,%d,%d,%d,%d,%d,%s,%.6f,%.6f,%.6f,%d,%d,%d,%d,%.6f,%d,%d"
    (Rcm.Geometry.slug p.geometry)
    cfg.bits cfg.nodes cfg.keys (mode_tag cfg.mode) p.r p.rq p.wq p.axis
    (float_or_nan p.churn_rate "%.9g")
    p.attempted p.quorum_reads p.degraded_reads p.failed_reads p.no_client
    (float_or_nan p.availability "%.6f")
    p.survival p.analytic p.mean_alive p.probe_routes p.repair_routes
    p.repair_transfers p.load_max p.load_mean p.load_p99 p.events

let to_json cfg p =
  let json_float v = if Float.is_finite v then Printf.sprintf "%.9g" v else "null" in
  Printf.sprintf
    "{\"geometry\": %S, \"bits\": %d, \"nodes\": %d, \"keys\": %d, \"zipf\": %s, \
     \"mode\": %S, \"r\": %d, \"rq\": %d, \"wq\": %d, \"axis\": %s, \"churn_rate\": %s, \
     \"attempted\": %d, \"quorum_reads\": %d, \"degraded_reads\": %d, \"failed_reads\": \
     %d, \"no_client\": %d, \"availability\": %s, \"survival\": %s, \"analytic\": %s, \
     \"alive\": %s, \"probe_routes\": %d, \"repair_routes\": %d, \"repair_transfers\": \
     %d, \"load_max\": %d, \"load_mean\": %s, \"load_p99\": %d, \"events\": %d}"
    (Rcm.Geometry.slug p.geometry)
    cfg.bits cfg.nodes cfg.keys (json_float cfg.zipf_s) (mode_tag cfg.mode) p.r p.rq
    p.wq (json_float p.axis) (json_float p.churn_rate) p.attempted p.quorum_reads
    p.degraded_reads p.failed_reads p.no_client
    (json_float p.availability)
    (json_float p.survival) (json_float p.analytic) (json_float p.mean_alive)
    p.probe_routes p.repair_routes p.repair_transfers p.load_max
    (json_float p.load_mean)
    p.load_p99 p.events
