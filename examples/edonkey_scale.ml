(* The paper's motivating scenario (section 1): the Kademlia-based
   eDonkey network reached millions of transient nodes. This example
   evaluates XOR routing at that scale, contrasts it with the
   geometries that would NOT have survived, and reproduces the
   million-node routability picture with analysis (simulation at 2^21
   would take minutes; the analysis is exact in milliseconds).

   Run with:  dune exec examples/edonkey_scale.exe *)

(* ~2 million nodes. *)
let bits = 21

(* P2P session churn: clients are transient; a static-resilience
   snapshot between repair rounds sees a substantial fraction of stale
   routing entries. *)
let failure_levels = [ 0.05; 0.10; 0.20; 0.30; 0.50 ]

let () =
  Fmt.pr "eDonkey-scale evaluation: N = 2^%d (~%.1f million nodes)@.@." bits
    (Float.pow 2.0 (float_of_int bits) /. 1e6);

  Fmt.pr "Routability of XOR (Kademlia) vs alternatives:@.";
  Fmt.pr "%-12s" "geometry";
  List.iter (fun q -> Fmt.pr " %9s" (Printf.sprintf "q=%.2f" q)) failure_levels;
  Fmt.pr "@.";
  List.iter
    (fun g ->
      Fmt.pr "%-12s" (Rcm.Geometry.name g);
      List.iter (fun q -> Fmt.pr " %9.4f" (Rcm.Model.routability g ~d:bits ~q)) failure_levels;
      Fmt.pr "@.")
    Rcm.Geometry.all_default;

  (* Expected lookup reach: how many of the ~2M nodes a surviving peer
     can still resolve at each failure level. *)
  Fmt.pr "@.Expected reachable peers from one surviving Kademlia node:@.";
  List.iter
    (fun q ->
      let reach = Rcm.Model.expected_reachable Rcm.Geometry.Xor ~d:bits ~q in
      let alive = ((1.0 -. q) *. Float.pow 2.0 (float_of_int bits)) -. 1.0 in
      Fmt.pr "  q=%.2f: %.2fM of %.2fM surviving peers (%.2f%%)@." q (reach /. 1e6)
        (alive /. 1e6)
        (100.0 *. reach /. alive))
    failure_levels;

  (* Growth stress test: does the picture hold as eDonkey grows 1000x?
     (Definition 2: only the scalable geometries keep a nonzero limit.) *)
  Fmt.pr "@.Routability at q = 0.20 as the network grows:@.";
  Fmt.pr "%-12s" "geometry";
  List.iter (fun d -> Fmt.pr " %9s" (Printf.sprintf "2^%d" d)) [ 21; 24; 27; 30; 34 ];
  Fmt.pr "@.";
  List.iter
    (fun g ->
      Fmt.pr "%-12s" (Rcm.Geometry.name g);
      List.iter
        (fun d -> Fmt.pr " %9.4f" (Rcm.Model.routability g ~d ~q:0.20))
        [ 21; 24; 27; 30; 34 ];
      Fmt.pr "@.")
    Rcm.Geometry.all_default;

  Fmt.pr
    "@.The XOR geometry loses almost nothing as the system grows — consistent with@.\
     eDonkey scaling to millions of nodes — while tree and basic Symphony would@.\
     have collapsed at this scale.@."
