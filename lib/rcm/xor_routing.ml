open Numerics

let log_population ~d ~h =
  Spec.check_d d;
  if h < 1 || h > d then invalid_arg "Xor_routing.log_population: h outside 1..d"
  else Binomial.log_choose d h

(* Eq. 6, exact form:
   Q(m) = q^m [ 1 + sum_{k=1..m-1} prod_{j=m-k..m-1} (1 - q^j) ].
   The k-th summand is the probability of surviving k suboptimal hops
   before every remaining neighbour is found dead; a running product
   evaluates the whole sum in O(m). *)
let phase_failure ~q ~m =
  Spec.check_q q;
  if m < 1 then invalid_arg "Xor_routing.phase_failure: m < 1"
  else begin
    let qm = Prob.pow q m in
    if qm = 0.0 then 0.0
    else begin
      let sum = ref 1.0 in
      let product = ref 1.0 in
      for k = 1 to m - 1 do
        product := !product *. (1.0 -. Prob.pow q (m - k));
        sum := !sum +. !product
      done;
      Prob.clamp (qm *. !sum)
    end
  end

(* The paper's closed approximation of Eq. 6 (obtained via 1-x ~ e^-x),
   kept for comparison; the exact form above is used everywhere else. *)
let phase_failure_approx ~q ~m =
  Spec.check_q q;
  if m < 1 then invalid_arg "Xor_routing.phase_failure_approx: m < 1"
  else if q = 0.0 then 0.0
  else if q = 1.0 then 1.0
  else begin
    let qm = Prob.pow q m in
    let mf = float_of_int m in
    let inner =
      (Prob.pow q (m - 1) *. (mf -. 1.0)) -. ((1.0 -. Prob.pow q (m + 1)) /. (1.0 -. q))
    in
    Prob.clamp (qm *. (mf +. (q /. (1.0 -. q) *. inner)))
  end

let success_probability ~q ~h =
  Spec.check_q q;
  if h < 0 then invalid_arg "Xor_routing.success_probability: negative h"
  else begin
    let acc = Kahan.create () in
    let rec loop m =
      if m > h then exp (Kahan.total acc)
      else begin
        let qm = phase_failure ~q ~m in
        if qm >= 1.0 then 0.0
        else begin
          Kahan.add acc (Float.log1p (-.qm));
          loop (m + 1)
        end
      end
    in
    loop 1
  end

let spec =
  {
    Spec.geometry = Geometry.Xor;
    max_phase = (fun ~d -> d);
    log_population = (fun ~d ~h -> log_population ~d ~h);
    phase_failure = (fun ~d:_ ~q ~m -> phase_failure ~q ~m);
  }
