let spec_of_geometry = function
  | Geometry.Tree -> Tree.spec
  | Geometry.Hypercube -> Hypercube.spec
  | Geometry.Xor -> Xor_routing.spec
  | Geometry.Ring -> Ring.spec
  | Geometry.Symphony { k_n; k_s } -> Symphony.spec ~k_n ~k_s

let routability geometry ~d ~q = Engine.routability (spec_of_geometry geometry) ~d ~q

let failed_paths_percent geometry ~d ~q =
  Engine.failed_paths_percent (spec_of_geometry geometry) ~d ~q

let success_probability geometry ~d ~q ~h =
  Engine.success_probability (spec_of_geometry geometry) ~d ~q ~h

let expected_reachable geometry ~d ~q =
  Engine.expected_reachable (spec_of_geometry geometry) ~d ~q

let phase_failure geometry ~d ~q ~m =
  (spec_of_geometry geometry).Spec.phase_failure ~d ~q ~m

(* The paper's comparison targets (section 4): for tree, hypercube, XOR
   and Symphony the chain model is exact for the basic geometry, while
   for ring it is a lower bound (suboptimal-hop progress is dropped). *)
let analysis_kind = function
  | Geometry.Ring -> `Lower_bound
  | Geometry.Tree | Geometry.Hypercube | Geometry.Xor | Geometry.Symphony _ -> `Exact_model
