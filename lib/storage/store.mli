(** A replicated key store over a sparse overlay: quorum reads through
    the router, graceful degradation below quorum, and read-repair.

    [create] samples a key population, places [r] replicas per key with
    {!Placement}, and snapshots that initial placement. {!read} draws a
    key by Zipf popularity, probes its current holders in placement
    order by routing client → holder, and classifies the result with
    {!Quorum.classify}. Probed holders found dead are re-replicated
    onto the next placement candidates (read-repair), mutating the
    {e current} holder set; the {e initial} snapshot is immutable so
    {!surviving_keys} stays an exact Binomial(r, 1-q) observable — the
    quantity Leslie's closed form ({!Rcm.Data_availability}) predicts.

    Determinism: a call to {!read} consumes exactly one uniform draw
    (the Zipf rank); routing and repair consume none. All bookkeeping
    (per-node load counters, holder mutation) is sequential, so a trial
    replays bit-identically from its seed. *)

type t

val create :
  ?zipf_s:float ->
  keys:int ->
  quorum:Quorum.t ->
  rng:Prng.Splitmix.t ->
  Overlay.Sparse.t ->
  t
(** [create ~keys ~quorum ~rng overlay] samples [keys] identifiers
    uniformly from the overlay's space and places [quorum.r] replicas
    each. [zipf_s] (default 0.8) is the key-popularity exponent; ranks
    follow key-slot order, so slot 0 is the hottest key.
    @raise Invalid_argument if [keys < 1] or [quorum.r] exceeds the
    node count. *)

val overlay : t -> Overlay.Sparse.t
val quorum : t -> Quorum.t
val key_count : t -> int

val key_id : t -> int -> int
(** The identifier of key slot [k]. *)

val holders : t -> int -> int array
(** Current holder set of key slot [k] (a copy), in placement-rank
    order; mutated by read-repair. *)

val initial_holders : t -> int -> int array
(** The immutable initial placement of key slot [k] (a copy). *)

val loads : t -> int array
(** Per-node count of reads served (a copy): node [v]'s entry grows by
    one each time a probe reaches [v] and it returns data. *)

val surviving_keys : t -> alive:Overlay.Failure.t -> quorum:int -> int
(** Number of key slots whose {e initial} holder set has at least
    [quorum] alive members — the replica-survival observable. *)

type read_stats = {
  outcome : Quorum.read_outcome;
  reached : int;  (** holders that returned data *)
  probes : int;  (** holders contacted (local or routed) *)
  probe_routes : int;  (** non-local route attempts while probing *)
  repair_routes : int;  (** route attempts made installing repairs *)
  repair_transfers : int;  (** replicas successfully re-installed *)
}

val read : t -> rng:Prng.Splitmix.t -> alive:Overlay.Failure.t -> client:int -> read_stats
(** One read from node [client] (which must be alive): draw a key by
    popularity, probe its holders in placement order until [rq] have
    answered or all have been tried, then repair. A holder answers if
    it is alive and the route from the client delivers (the client
    itself answers locally). Probed holders that are {e dead} trigger
    read-repair when at least one holder answered: the first responder
    re-replicates onto the next placement candidates, each attempt
    costing one route, until the slot is filled or
    {!repair_attempt_cap} candidates failed. Alive-but-unreachable
    holders are left alone — the data is not lost, so re-replication
    would create spurious copies.

    Metering (when {!Obs.Metrics} is enabled): [storage/reads],
    [storage/quorum_reads], [storage/degraded_reads],
    [storage/failed_reads], [storage/probe_routes],
    [storage/repair_routes], [storage/repair_transfers]. *)

val repair_attempt_cap : int
(** Candidate ranks tried per dead holder before giving up (4). *)
