(** Provenance manifest for a run: one atomic JSON file tying every
    artefact the run produced back to exactly how it was produced.

    A multi-hour sweep leaves CSVs, checkpoints, traces and metrics
    snapshots behind; six months later the only trustworthy answer to
    "which seed/jobs/commit made this file?" is a machine-readable
    record written by the run itself. [dhtlab --manifest FILE] (and
    [dhtlab export], automatically) opens a manifest at startup,
    subcommands {!note} their resolved configuration and
    {!add_artefact} every file they write, and the front end
    {!finish}es it with the exit status — at which point every artefact
    is stat'ed and checksummed (MD5 via [Digest]) and the manifest is
    written atomically via {!Atomic_file}. The schema is validated by
    [bench/validate.exe --manifest] and pinned in README.

    Process-wide singleton like {!Metrics}/{!Trace}; every entry point
    is a no-op when no manifest was started, so library code can note
    facts unconditionally. Observation-only: nothing here touches a
    PRNG or stdout. *)

type value = String of string | Int of int | Float of float | Bool of bool | Strings of string list

val start : argv:string list -> path:string -> unit
(** Open a manifest to be written at [path]. Captures the wall-clock
    start time, hostname, OCaml version and [argv]. Replaces any
    manifest already open (the previous one is discarded unwritten). *)

val active : unit -> bool

val note : string -> value -> unit
(** Record one resolved-configuration fact (seed, jobs, geometry
    parameters, ...). Last write per key wins; insertion order is
    preserved in the file. No-op when inactive. *)

val add_artefact : kind:string -> string -> unit
(** Register a file the run is producing ([kind] is a short tag: "csv",
    "checkpoint", "trace", "metrics", ...). Recorded once per path;
    checksummed at {!finish} time so the hash covers the final bytes.
    Artefacts missing on disk at finish are recorded with
    ["exists": false] and no checksum (e.g. a checkpoint flag on a run
    that completed no trial). No-op when inactive. *)

val finish : exit_status:int -> unit
(** Stamp the end time and [exit_status], checksum the artefacts and
    atomically write the manifest. Closes the singleton (further calls
    are no-ops until the next {!start}). Call it after every sink has
    flushed and renamed its own file, so the recorded checksums match
    what is on disk. *)
