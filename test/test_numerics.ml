open Helpers

(* --- Kahan ------------------------------------------------------------ *)

let test_kahan_empty () =
  Alcotest.(check (float 0.0)) "empty sum" 0.0 (Numerics.Kahan.sum_array [||])

let test_kahan_simple () =
  check_close 6.0 (Numerics.Kahan.sum_list [ 1.0; 2.0; 3.0 ])

let test_kahan_compensation () =
  (* 1 + 1e-16 added 10^5 times loses the small terms in naive order;
     compensated summation keeps them. *)
  let tiny = 1e-16 in
  let acc = Numerics.Kahan.create () in
  Numerics.Kahan.add acc 1.0;
  for _ = 1 to 100_000 do
    Numerics.Kahan.add acc tiny
  done;
  check_close (1.0 +. (100_000.0 *. tiny)) (Numerics.Kahan.total acc)

let test_kahan_large_then_small () =
  (* Neumaier handles a term larger than the running total. *)
  check_close 2.0 (Numerics.Kahan.sum_list [ 1.0; 1e100; 1.0; -1e100 ])

let test_kahan_count () =
  let acc = Numerics.Kahan.create () in
  Numerics.Kahan.add acc 1.0;
  Numerics.Kahan.add acc 2.0;
  Alcotest.(check int) "count" 2 (Numerics.Kahan.count acc)

let test_kahan_sum_fn () =
  check_close 55.0 (Numerics.Kahan.sum_fn ~lo:1 ~hi:10 float_of_int);
  Alcotest.(check (float 0.0)) "empty range" 0.0 (Numerics.Kahan.sum_fn ~lo:5 ~hi:4 float_of_int)

let kahan_matches_sorted_sum =
  qcheck "kahan matches high-precision reference"
    QCheck2.Gen.(list_size (int_range 0 200) (float_range (-1e6) 1e6))
    (fun xs ->
      let reference =
        (* Sum smallest-magnitude first as a good reference. *)
        List.sort (fun a b -> compare (Float.abs a) (Float.abs b)) xs
        |> List.fold_left ( +. ) 0.0
      in
      Numerics.Approx.equal ~rtol:1e-9 ~atol:1e-6 reference (Numerics.Kahan.sum_list xs))

(* --- Special functions ------------------------------------------------ *)

let test_log_gamma_integers () =
  (* Gamma(n) = (n-1)! *)
  let factorial n = List.fold_left (fun acc i -> acc *. float_of_int i) 1.0 (List.init n succ) in
  List.iter
    (fun n ->
      check_close ~msg:(Printf.sprintf "lgamma %d" n)
        (log (factorial (n - 1)))
        (Numerics.Special.log_gamma (float_of_int n)))
    [ 1; 2; 3; 5; 10; 20; 100 ]

let test_log_gamma_half () =
  (* Gamma(1/2) = sqrt(pi). *)
  check_close (0.5 *. log Numerics.Special.pi) (Numerics.Special.log_gamma 0.5)

let test_log_gamma_reflection () =
  (* Gamma(x) Gamma(1-x) = pi / sin(pi x) at x = 0.3. *)
  let x = 0.3 in
  let lhs = Numerics.Special.log_gamma x +. Numerics.Special.log_gamma (1.0 -. x) in
  check_close (log (Numerics.Special.pi /. sin (Numerics.Special.pi *. x))) lhs

let test_log_gamma_poles () =
  Alcotest.(check bool) "pole at 0" true (Numerics.Special.log_gamma 0.0 = infinity);
  Alcotest.(check bool) "pole at -3" true (Numerics.Special.log_gamma (-3.0) = infinity)

let test_log_factorial () =
  check_close 0.0 (Numerics.Special.log_factorial 0);
  check_close 0.0 (Numerics.Special.log_factorial 1);
  check_close (log 120.0) (Numerics.Special.log_factorial 5);
  (* Cached vs lgamma regime must agree across the cache boundary. *)
  check_close
    (Numerics.Special.log_gamma 258.0)
    (Numerics.Special.log_factorial 257)

let test_log_factorial_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Special.log_factorial: negative argument")
    (fun () -> ignore (Numerics.Special.log_factorial (-1)))

let test_log1mexp () =
  check_close (log 0.5) (Numerics.Special.log1mexp (-.log 2.0));
  check_close ~msg:"tiny x" (log 1e-9) (Numerics.Special.log1mexp (Float.log1p (-1e-9)));
  Alcotest.(check bool) "at 0" true (Numerics.Special.log1mexp 0.0 = neg_infinity)

let test_log1pexp () =
  check_close (log 2.0) (Numerics.Special.log1pexp 0.0);
  check_close 100.0 (Numerics.Special.log1pexp 100.0);
  check_close (exp (-50.0)) (Numerics.Special.log1pexp (-50.0))

let log1mexp_identity =
  qcheck "log1mexp inverts log(1-p)" prob_gen (fun p ->
      let p = Float.min p 0.999 in
      Numerics.Approx.equal ~rtol:1e-9 ~atol:1e-12 (log p)
        (Numerics.Special.log1mexp (Float.log1p (-.p))))

(* --- Logspace ---------------------------------------------------------- *)

let test_logspace_roundtrip () =
  check_close 42.0 Numerics.Logspace.(to_float (of_float 42.0));
  Alcotest.(check bool) "zero" true Numerics.Logspace.(is_zero (of_float 0.0))

let test_logspace_add () =
  check_close 5.0 Numerics.Logspace.(to_float (add (of_float 2.0) (of_float 3.0)));
  check_close 3.0 Numerics.Logspace.(to_float (add zero (of_float 3.0)))

let test_logspace_add_huge () =
  (* 1e300 + 1e300 = 2e300 without overflow in the log domain. *)
  let x = Numerics.Logspace.of_log (300.0 *. log 10.0) in
  check_close
    ((300.0 *. log 10.0) +. log 2.0)
    Numerics.Logspace.(to_log (add x x))

let test_logspace_sub () =
  check_close 1.0 Numerics.Logspace.(to_float (sub (of_float 3.0) (of_float 2.0)));
  Alcotest.check_raises "negative result" (Invalid_argument "Logspace.sub: negative result")
    (fun () -> ignore Numerics.Logspace.(sub (of_float 2.0) (of_float 3.0)))

let test_logspace_sum () =
  let terms = Array.map Numerics.Logspace.of_float [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close 10.0 Numerics.Logspace.(to_float (sum terms));
  Alcotest.(check bool) "empty" true Numerics.Logspace.(is_zero (sum [||]))

let test_logspace_sum_fn () =
  check_close 15.0
    Numerics.Logspace.(
      to_float (sum_fn ~lo:1 ~hi:5 (fun i -> of_float (float_of_int i))))

let logspace_mul_is_product =
  qcheck "logspace mul = product"
    QCheck2.Gen.(pair (float_range 1e-10 1e10) (float_range 1e-10 1e10))
    (fun (a, b) ->
      Numerics.Approx.equal ~rtol:1e-9 (a *. b)
        Numerics.Logspace.(to_float (mul (of_float a) (of_float b))))

let logspace_add_commutes =
  qcheck "logspace add commutes"
    QCheck2.Gen.(pair (float_range 0.0 1e5) (float_range 0.0 1e5))
    (fun (a, b) ->
      Numerics.Approx.equal ~rtol:1e-12
        Numerics.Logspace.(to_log (add (of_float a) (of_float b)))
        Numerics.Logspace.(to_log (add (of_float b) (of_float a))))

(* --- Binomial ----------------------------------------------------------- *)

let test_choose_small () =
  Alcotest.(check int) "C(5,2)" 10 (Numerics.Binomial.choose_exn 5 2);
  Alcotest.(check int) "C(10,0)" 1 (Numerics.Binomial.choose_exn 10 0);
  Alcotest.(check int) "C(10,10)" 1 (Numerics.Binomial.choose_exn 10 10);
  Alcotest.(check int) "C(3,7)" 0 (Numerics.Binomial.choose_exn 3 7)

let test_choose_float_matches_exact () =
  for n = 0 to 30 do
    for k = 0 to n do
      check_close
        ~msg:(Printf.sprintf "C(%d,%d)" n k)
        (float_of_int (Numerics.Binomial.choose_exn n k))
        (Numerics.Binomial.choose_float n k)
    done
  done

let test_log_choose_large () =
  (* C(100,50) ~ 1.0089e29: log_choose must agree with the
     multiplicative evaluation to ~1e-12 relative. *)
  check_loose
    (log (Numerics.Binomial.choose_float 100 50))
    (Numerics.Binomial.log_choose 100 50)

let test_log_choose_out_of_range () =
  Alcotest.(check bool) "k > n" true (Numerics.Binomial.log_choose 5 6 = neg_infinity)

let test_pascal_row () =
  let row = Numerics.Binomial.pascal_row 5 in
  Alcotest.(check (array (float 1e-9))) "row 5" [| 1.; 5.; 10.; 10.; 5.; 1. |] row

let test_pascal_row_sums () =
  (* Row n sums to 2^n. *)
  List.iter
    (fun n ->
      check_close ~msg:(Printf.sprintf "sum row %d" n)
        (Float.pow 2.0 (float_of_int n))
        (Numerics.Kahan.sum_array (Numerics.Binomial.pascal_row n)))
    [ 1; 8; 16; 40 ]

let binomial_symmetry =
  qcheck "C(n,k) = C(n,n-k)"
    QCheck2.Gen.(pair (int_range 0 200) (int_range 0 200))
    (fun (n, k) ->
      let k = if n = 0 then 0 else k mod (n + 1) in
      Numerics.Approx.equal
        (Numerics.Binomial.log_choose n k)
        (Numerics.Binomial.log_choose n (n - k)))

let binomial_pascal_identity =
  qcheck "C(n,k) = C(n-1,k-1) + C(n-1,k)"
    QCheck2.Gen.(pair (int_range 1 60) (int_range 1 60))
    (fun (n, k) ->
      let k = 1 + (k mod n) in
      Numerics.Approx.equal ~rtol:1e-12
        (Numerics.Binomial.choose_float n k)
        (Numerics.Binomial.choose_float (n - 1) (k - 1)
        +. Numerics.Binomial.choose_float (n - 1) k))

(* --- Prob ---------------------------------------------------------------- *)

let test_prob_pow () =
  check_close 0.25 (Numerics.Prob.pow 0.5 2);
  check_close 1.0 (Numerics.Prob.pow 0.7 0);
  check_close 0.0 (Numerics.Prob.pow 0.0 3);
  check_close 1.0 (Numerics.Prob.pow 1.0 100)

let test_prob_pow_invalid () =
  Alcotest.check_raises "negative exponent" (Invalid_argument "Prob.pow: negative exponent")
    (fun () -> ignore (Numerics.Prob.pow 0.5 (-1)))

let test_geometric_sum_exact () =
  (* sum_{k=0..3} 0.5^k = 1.875 *)
  check_close 1.875 (Numerics.Prob.geometric_sum 0.5 4.0);
  check_close 0.0 (Numerics.Prob.geometric_sum 0.5 0.0);
  check_close 1.0 (Numerics.Prob.geometric_sum 0.5 1.0)

let test_geometric_sum_near_one () =
  (* x = 1 - 1e-12, n = 1000: naive closed form cancels; the answer is
     ~n to within n^2 eps / 2. *)
  check_loose 1000.0 (Numerics.Prob.geometric_sum (1.0 -. 1e-12) 1000.0)

let test_geometric_sum_huge_n () =
  (* With |x| < 1 and astronomically large n the sum is 1/(1-x). *)
  check_close (1.0 /. 0.7) (Numerics.Prob.geometric_sum 0.3 (Float.pow 2.0 99.0))

let test_at_least_one_of () =
  check_close 0.75 (Numerics.Prob.at_least_one_of ~q:0.5 ~count:2);
  check_close 0.0 (Numerics.Prob.at_least_one_of ~q:0.5 ~count:0);
  check_close 1.0 (Numerics.Prob.at_least_one_of ~q:0.0 ~count:3);
  check_close 0.0 (Numerics.Prob.at_least_one_of ~q:1.0 ~count:3)

let geometric_sum_matches_naive =
  qcheck "geometric sum matches naive evaluation"
    QCheck2.Gen.(pair (float_range 0.0 0.99) (int_range 1 200))
    (fun (x, n) ->
      let naive = ref 0.0 in
      for k = n - 1 downto 0 do
        naive := !naive +. (x ** float_of_int k)
      done;
      Numerics.Approx.equal ~rtol:1e-9 !naive
        (Numerics.Prob.geometric_sum x (float_of_int n)))

let at_least_one_bounds =
  qcheck "1 - q^count is a probability, monotone in count"
    QCheck2.Gen.(pair prob_gen (int_range 1 60))
    (fun (q, count) ->
      let v = Numerics.Prob.at_least_one_of ~q ~count in
      let v' = Numerics.Prob.at_least_one_of ~q ~count:(count + 1) in
      Numerics.Prob.is_valid v && v' >= v)

(* --- Series -------------------------------------------------------------- *)

let test_series_geometric_convergent () =
  match Numerics.Series.classify (fun m -> 0.5 ** float_of_int m) with
  | Numerics.Series.Convergent { partial_sum; tail_bound; _ } ->
      Alcotest.(check bool) "sum ~ 1" true (Float.abs (partial_sum -. 1.0) <= tail_bound +. 1e-9)
  | v -> Alcotest.failf "expected convergent, got %a" Numerics.Series.pp_verdict v

let test_series_constant_divergent () =
  match Numerics.Series.classify (fun _ -> 0.1) with
  | Numerics.Series.Divergent _ -> ()
  | v -> Alcotest.failf "expected divergent, got %a" Numerics.Series.pp_verdict v

let test_series_m_qm_convergent () =
  (* sum m q^m = q / (1-q)^2 — the XOR scalability series shape. *)
  let q = 0.4 in
  match Numerics.Series.classify (fun m -> float_of_int m *. (q ** float_of_int m)) with
  | Numerics.Series.Convergent { partial_sum; _ } ->
      check_loose (q /. ((1.0 -. q) ** 2.0)) partial_sum
  | v -> Alcotest.failf "expected convergent, got %a" Numerics.Series.pp_verdict v

let test_series_rejects_negative () =
  Alcotest.check_raises "negative term"
    (Invalid_argument "Series.classify: terms must be non-negative") (fun () ->
      ignore (Numerics.Series.classify (fun m -> if m = 3 then -1.0 else 0.5)))

let test_series_partial_sum () =
  check_close 55.0 (Numerics.Series.partial_sum ~terms:10 float_of_int)

let test_infinite_product () =
  (* prod (1 - 0.5^m) = QPochhammer(1/2) ~ 0.2887880951. *)
  check_loose 0.288788095086602
    (Numerics.Series.infinite_product_one_minus (fun m -> 0.5 ** float_of_int m));
  (* A constant term collapses the product to 0. *)
  Alcotest.(check (float 1e-12)) "constant -> 0" 0.0
    (Numerics.Series.infinite_product_one_minus (fun _ -> 0.1))

let test_infinite_product_zero_term () =
  Alcotest.(check (float 0.0)) "term = 1 -> 0" 0.0
    (Numerics.Series.infinite_product_one_minus (fun m -> if m = 2 then 1.0 else 0.0))

(* --- Approx ---------------------------------------------------------------- *)

let test_approx_nan () =
  Alcotest.(check bool) "nan equals nothing" false (Numerics.Approx.equal nan nan)

let test_approx_relative_error () =
  check_close 0.5 (Numerics.Approx.relative_error ~expected:2.0 3.0);
  check_close 3.0 (Numerics.Approx.relative_error ~expected:0.0 3.0)

let suite =
  [
    ("kahan empty", `Quick, test_kahan_empty);
    ("kahan simple", `Quick, test_kahan_simple);
    ("kahan compensation", `Quick, test_kahan_compensation);
    ("kahan large-then-small", `Quick, test_kahan_large_then_small);
    ("kahan count", `Quick, test_kahan_count);
    ("kahan sum_fn", `Quick, test_kahan_sum_fn);
    kahan_matches_sorted_sum;
    ("log_gamma at integers", `Quick, test_log_gamma_integers);
    ("log_gamma at 1/2", `Quick, test_log_gamma_half);
    ("log_gamma reflection", `Quick, test_log_gamma_reflection);
    ("log_gamma poles", `Quick, test_log_gamma_poles);
    ("log_factorial", `Quick, test_log_factorial);
    ("log_factorial negative", `Quick, test_log_factorial_negative);
    ("log1mexp", `Quick, test_log1mexp);
    ("log1pexp", `Quick, test_log1pexp);
    log1mexp_identity;
    ("logspace roundtrip", `Quick, test_logspace_roundtrip);
    ("logspace add", `Quick, test_logspace_add);
    ("logspace add huge", `Quick, test_logspace_add_huge);
    ("logspace sub", `Quick, test_logspace_sub);
    ("logspace sum", `Quick, test_logspace_sum);
    ("logspace sum_fn", `Quick, test_logspace_sum_fn);
    logspace_mul_is_product;
    logspace_add_commutes;
    ("choose small", `Quick, test_choose_small);
    ("choose_float matches exact", `Quick, test_choose_float_matches_exact);
    ("log_choose large", `Quick, test_log_choose_large);
    ("log_choose out of range", `Quick, test_log_choose_out_of_range);
    ("pascal row", `Quick, test_pascal_row);
    ("pascal row sums", `Quick, test_pascal_row_sums);
    binomial_symmetry;
    binomial_pascal_identity;
    ("prob pow", `Quick, test_prob_pow);
    ("prob pow invalid", `Quick, test_prob_pow_invalid);
    ("geometric sum exact", `Quick, test_geometric_sum_exact);
    ("geometric sum near one", `Quick, test_geometric_sum_near_one);
    ("geometric sum huge n", `Quick, test_geometric_sum_huge_n);
    ("at_least_one_of", `Quick, test_at_least_one_of);
    geometric_sum_matches_naive;
    at_least_one_bounds;
    ("series geometric convergent", `Quick, test_series_geometric_convergent);
    ("series constant divergent", `Quick, test_series_constant_divergent);
    ("series m*q^m convergent", `Quick, test_series_m_qm_convergent);
    ("series rejects negative", `Quick, test_series_rejects_negative);
    ("series partial sum", `Quick, test_series_partial_sum);
    ("infinite product", `Quick, test_infinite_product);
    ("infinite product zero term", `Quick, test_infinite_product_zero_term);
    ("approx nan", `Quick, test_approx_nan);
    ("approx relative error", `Quick, test_approx_relative_error);
  ]
