(** Empirical convergence analysis of non-negative series.

    Theorem 1 of the paper (Knopp) reduces the scalability of a routing
    geometry to the convergence of the series of per-phase failure
    probabilities sum Q(m). This module certifies convergence with a
    sustained-ratio test (geometric tail bound) and divergence with the
    term test, and evaluates the associated infinite products. *)

type verdict =
  | Convergent of { partial_sum : float; tail_bound : float; terms_used : int }
  | Divergent of { reason : string; partial_sum : float; terms_used : int }
  | Inconclusive of { partial_sum : float; terms_used : int }

val pp_verdict : Format.formatter -> verdict -> unit

val is_convergent : verdict -> bool

val classify :
  ?max_terms:int -> ?ratio_window:int -> ?tolerance:float -> (int -> float) -> verdict
(** [classify f] analyses sum over m >= 1 of [f m] (terms must be
    non-negative).
    @raise Invalid_argument on negative or nan terms. *)

val partial_sum : terms:int -> (int -> float) -> float
(** [partial_sum ~terms f] is the compensated sum of [f 1 .. f terms]. *)

val infinite_product_one_minus :
  ?max_terms:int -> ?tolerance:float -> (int -> float) -> float
(** [infinite_product_one_minus f] evaluates prod over m >= 1 of
    (1 - f m), i.e. the asymptotic success probability
    lim p(h, q) of Eq. 9. Terms must lie in [0, 1]. *)
